//! The SOE evaluation session: the full client-side pipeline of Figure 2.
//!
//! A session streams the encrypted document from the terminal through the
//! SOE: bytes are transferred, verified (per the integrity scheme),
//! deciphered, skip-index decoded and fed to the access-control
//! evaluator. Skip directives translate into byte seeks that save
//! communication *and* decryption — "the two limiting factors of the
//! target architecture" (§3.3). Pending subtrees are skipped and read
//! back on resolution (§5); their bytes are charged only if actually
//! delivered.
//!
//! Every byte consumed by the decoder is metered through the
//! [`xsac_crypto::SoeReader`], which also performs the *real* integrity
//! verification — a tampered document aborts the session exactly as it
//! would on the card.

use crate::cost::{CostModel, TimeBreakdown};
use crate::document::ServerDoc;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use xsac_core::evaluator::{
    CompiledPolicy, Directive, EvalConfig, Evaluator, MinimizeStats, SkipInfo,
};
use xsac_core::output::{LogItem, OutputStats, SubtreeRef};
use xsac_core::stats::EvalStats;
use xsac_core::Policy;
use xsac_crypto::protocol::AccessCost;
use xsac_crypto::store::ChunkStore;
use xsac_crypto::{LeafCache, ReadError, SoeReader, StoreError, TripleDes};
use xsac_index::decode::{
    ByteSource, CursorDecoder, CursorError, DecodedNode, Decoder, DecoderContext,
};
use xsac_obs::{Phase, PhaseProfile, SpanClock};
use xsac_xpath::Automaton;

/// How the SOE consumes the document.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Skip-index driven (the paper's TCSBR strategy).
    Tcsbr,
    /// Ablation: subtree sizes only — skips fire when tokens die
    /// naturally, but the `RemainingLabels`/`DescTag` token filter of
    /// §4.2 is disabled (models a TCS-style index).
    SizesOnly,
    /// Brute force: read and analyze everything (the BF baseline of
    /// Figure 9 — "filtering the document without any index").
    BruteForce,
}

/// Session configuration.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Consumption strategy.
    pub strategy: Strategy,
    /// Cost model used to synthesize times.
    pub cost: CostModel,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig { strategy: Strategy::Tcsbr, cost: CostModel::smartcard() }
    }
}

/// Session failure.
#[derive(Debug)]
pub enum SessionError {
    /// Tampering detected by the integrity layer.
    Integrity(xsac_crypto::IntegrityError),
    /// The ciphertext store failed (short read, I/O error, truncation) —
    /// out-of-core backends are fallible; a storage fault aborts the
    /// session exactly like tampering, with nothing partially delivered.
    Store(StoreError),
    /// Malformed encoded document.
    Decode(xsac_index::DecodeError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Integrity(e) => write!(f, "session aborted: {e}"),
            SessionError::Store(e) => write!(f, "session aborted: {e}"),
            SessionError::Decode(e) => write!(f, "session aborted: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl SessionError {
    /// Whether re-running the whole session could plausibly succeed.
    ///
    /// Tampering and malformed documents are permanent; storage failures
    /// delegate to [`StoreError::is_transient`] — by the time one
    /// surfaces here the backend's own bounded retries (e.g. the remote
    /// store's reconnect loop) are already exhausted, so this is advice
    /// for the *caller's* retry policy, not an invitation to loop.
    pub fn is_transient(&self) -> bool {
        match self {
            SessionError::Integrity(_) | SessionError::Decode(_) => false,
            SessionError::Store(e) => e.is_transient(),
        }
    }
}

impl From<xsac_crypto::IntegrityError> for SessionError {
    fn from(e: xsac_crypto::IntegrityError) -> Self {
        SessionError::Integrity(e)
    }
}

impl From<ReadError> for SessionError {
    fn from(e: ReadError) -> Self {
        match e {
            ReadError::Integrity(e) => SessionError::Integrity(e),
            ReadError::Store(e) => SessionError::Store(e),
        }
    }
}

impl From<xsac_index::DecodeError> for SessionError {
    fn from(e: xsac_index::DecodeError) -> Self {
        SessionError::Decode(e)
    }
}

impl From<CursorError<ReadError>> for SessionError {
    fn from(e: CursorError<ReadError>) -> Self {
        match e {
            CursorError::Source(e) => e.into(),
            CursorError::Decode(e) => SessionError::Decode(e),
        }
    }
}

/// Outcome of a session.
pub struct SessionResult {
    /// Delivery log of the authorized view / query result.
    pub log: Vec<LogItem>,
    /// Output statistics.
    pub output: OutputStats,
    /// Evaluator statistics.
    pub stats: EvalStats,
    /// Byte-level costs metered by the integrity layer.
    pub cost: AccessCost,
    /// Synthesized times under the session's cost model.
    pub time: TimeBreakdown,
    /// Size of the delivered result (text + tag bytes).
    pub result_bytes: usize,
    /// Readback contexts registered over the whole session (one per
    /// pending skip).
    pub handles_created: usize,
    /// Peak readback contexts retained at once. Served and discarded
    /// contexts are dropped eagerly, so this stays proportional to the
    /// *simultaneously pending* subtrees, not to every skip ever taken.
    pub handles_peak: usize,
    /// Policy-compiler observability: how much the containment-based
    /// minimization pass shrank the rule set this session ran under, and
    /// how big the resulting flat instruction bank is.
    pub compiler: MinimizeStats,
    /// Measured wall time per pipeline phase: fetch/decrypt/hash from the
    /// SOE reader, decode/evaluate from the session event loop (decode is
    /// exclusive — reader time accrued inside `decoder.next()` is
    /// subtracted out). Telemetry only: zero under `telemetry-off` or
    /// when runtime-disabled, and never part of the byte-exact outputs
    /// the differential suites compare ([`AccessCost`] and
    /// [`TimeBreakdown`] stay model-synthesized).
    pub phases: PhaseProfile,
}

// Sessions fan out over threads in the server layer; their results must
// cross back (compile-time check).
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<SessionResult>();
    assert_send::<SessionError>();
};

impl SessionResult {
    /// Throughput in KB of *source document* per second (Figure 12).
    pub fn throughput_kbps(&self, source_bytes: usize) -> f64 {
        source_bytes as f64 / 1000.0 / self.time.total()
    }
}

/// Runs one SOE session, compiling the policy privately.
///
/// Sessions sharing a document and role should go through
/// [`crate::server::DocServer`] (or call [`run_session_shared`] directly)
/// so rule compilation and terminal leaf hashing happen once, not per
/// session.
pub fn run_session<S: ChunkStore>(
    server: &ServerDoc<S>,
    key: &TripleDes,
    policy: &Policy,
    query: Option<&Automaton>,
    config: &SessionConfig,
) -> Result<SessionResult, SessionError> {
    let compiled = Arc::new(CompiledPolicy::compile(policy));
    run_session_shared(server, key, &compiled, query, config, None)
}

/// Bookkeeping for pending-subtree readback contexts. Contexts are
/// dropped as soon as they can no longer be requested (served, or the
/// pending condition resolved false), keeping a long session's table
/// O(pending) instead of O(all handles ever).
#[derive(Default)]
struct HandleTable {
    map: HashMap<u64, DecoderContext>,
    next: u64,
    created: usize,
    peak: usize,
}

impl HandleTable {
    fn insert(&mut self, ctx: DecoderContext) -> u64 {
        let id = self.next;
        self.next += 1;
        self.map.insert(id, ctx);
        self.created += 1;
        self.peak = self.peak.max(self.map.len());
        id
    }

    fn remove(&mut self, id: u64) {
        self.map.remove(&id);
    }
}

/// [`ByteSource`] adapter: every byte the decoder pulls is transferred,
/// verified and deciphered through the [`SoeReader`] — the real Figure-2
/// pipeline. Nothing stays resident beyond the reader's chunk window and
/// the decoder's per-record buffers, so a session's footprint is bounded
/// by the window budget plus one record, independent of document size.
struct SoeSource<'a, S: ChunkStore> {
    reader: SoeReader<'a, S>,
    /// Encoded plaintext length (`ProtectedDoc::plain_len`).
    len: usize,
}

impl<S: ChunkStore> ByteSource for SoeSource<'_, S> {
    type Error = ReadError;

    fn len(&self) -> usize {
        self.len
    }

    fn fetch(&mut self, offset: usize, len: usize, out: &mut Vec<u8>) -> Result<(), ReadError> {
        self.reader.read_into(offset, len, out)
    }
}

/// First phase of each loop step: what the decoder produced, minus the
/// borrowed payloads (text is fed to the evaluator while the decoder's
/// buffer is live; everything else is `Copy`). Splitting the step this
/// way ends the lending borrow of [`CursorDecoder::next`] before the
/// directive handling needs the decoder back.
enum Step {
    End,
    Close,
    Text,
    Element(xsac_xml::TagId),
}

/// Runs one SOE session over a pre-compiled (shareable) policy and, under
/// ECB-MHT, an optional cross-session terminal leaf-hash cache — the
/// multi-session serving path.
pub fn run_session_shared<S: ChunkStore>(
    server: &ServerDoc<S>,
    key: &TripleDes,
    policy: &Arc<CompiledPolicy>,
    query: Option<&Automaton>,
    config: &SessionConfig,
    leaves: Option<&Arc<LeafCache>>,
) -> Result<SessionResult, SessionError> {
    let reader = match leaves {
        Some(cache) => SoeReader::with_leaf_cache(&server.protected, key, Arc::clone(cache)),
        None => SoeReader::new(&server.protected, key),
    };
    // The decoder pulls every record it visits out of the ciphertext
    // through the reader: transfer, verification and decryption happen on
    // demand, per record, and skipped subtrees are never fetched at all.
    // No plaintext image of the document exists on either side. A
    // verification failure aborts the session.
    let source = SoeSource { reader, len: server.protected.plain_len };
    let mut decoder = CursorDecoder::new(source, server.dict.len())?;

    let eval_config = EvalConfig {
        enable_skip_directives: config.strategy != Strategy::BruteForce,
        ..Default::default()
    };
    let use_desc_filter = config.strategy == Strategy::Tcsbr;
    let mut eval = Evaluator::with_compiled(Arc::clone(policy), query, eval_config);

    // Pending skipped subtrees: handle → saved decoder context.
    let mut handles = HandleTable::default();

    // Span clock for the event loop: one clock read per decode↔evaluate
    // transition. Reader time (fetch/decrypt/hash) accrues inside
    // `decoder.next()`/`read_range` calls — always under the Decode span
    // — and is subtracted out at the end, so the reported Decode figure
    // is decode-exclusive.
    let mut spans = PhaseProfile::new();
    let mut clock = SpanClock::start(Phase::Decode);

    loop {
        // Phase 1: advance the decoder; consume borrowed payloads (text)
        // immediately so the lending borrow can end.
        clock.switch(&mut spans, Phase::Decode);
        let step = match decoder.next()? {
            DecodedNode::End => Step::End,
            DecodedNode::Close(_) => Step::Close,
            DecodedNode::Text(t) => {
                clock.switch(&mut spans, Phase::Evaluate);
                eval.text(t);
                Step::Text
            }
            DecodedNode::Element { tag, .. } => Step::Element(tag),
        };
        // Phase 2: directive handling, free to navigate the decoder.
        clock.switch(&mut spans, Phase::Evaluate);
        match step {
            Step::End => break,
            Step::Text => {
                serve_readbacks(&mut eval, &mut decoder, &mut handles, &mut clock, &mut spans)?;
            }
            Step::Close => {
                let directive = eval.close();
                serve_readbacks(&mut eval, &mut decoder, &mut handles, &mut clock, &mut spans)?;
                if directive == Directive::SkipDeny || directive == Directive::SkipPending {
                    // Skip the rest of the parent element. A denied rest
                    // needs no readback context; a pending one registers
                    // its context only for as long as the evaluator
                    // actually keeps the handle.
                    if let Some(ctx) = decoder.rest_context() {
                        if ctx.start < ctx.end {
                            decoder.skip_rest();
                            if directive == Directive::SkipPending {
                                let handle = handles.insert(ctx);
                                if !eval.skip_close(Some(SubtreeRef(handle))) {
                                    handles.remove(handle);
                                }
                            } else {
                                eval.skip_close(None);
                            }
                            serve_readbacks(
                                &mut eval,
                                &mut decoder,
                                &mut handles,
                                &mut clock,
                                &mut spans,
                            )?;
                            continue;
                        }
                    }
                }
            }
            Step::Element(tag) => {
                let ctx = decoder.last_element_context();
                let handle_id = handles.next;
                let info = SkipInfo {
                    desc_tags: if use_desc_filter { Some(decoder.last_desc()) } else { None },
                    handle: ctx.as_ref().map(|_| SubtreeRef(handle_id)),
                };
                let directive = eval.open(tag, Some(&info));
                serve_readbacks(&mut eval, &mut decoder, &mut handles, &mut clock, &mut spans)?;
                match directive {
                    Directive::Continue => {}
                    Directive::SkipDeny => {
                        decoder.skip_current();
                        eval.skip_close(None);
                        serve_readbacks(
                            &mut eval,
                            &mut decoder,
                            &mut handles,
                            &mut clock,
                            &mut spans,
                        )?;
                    }
                    Directive::SkipPending => {
                        let ctx = ctx.expect("element context");
                        let handle = handles.insert(ctx);
                        decoder.skip_current();
                        if !eval.skip_close(Some(SubtreeRef(handle))) {
                            handles.remove(handle);
                        }
                        serve_readbacks(
                            &mut eval,
                            &mut decoder,
                            &mut handles,
                            &mut clock,
                            &mut spans,
                        )?;
                    }
                    Directive::Deliver => {
                        // Bulk delivery: stream the subtree's events
                        // without rule evaluation — bytes are still
                        // transferred and deciphered, record by record,
                        // and the element's own close arrives from the
                        // decoder (its open was already processed).
                        //
                        // The whole streamed span is charged to Decode:
                        // delivery is decoding plus copy-out, the rule
                        // engine never runs, and per-event clock reads
                        // here would blow the <2% instrumentation budget
                        // the A/B bench enforces on delivery-heavy
                        // profiles. Evaluate stays rule-engine-only.
                        clock.switch(&mut spans, Phase::Decode);
                        let depth = decoder.depth();
                        loop {
                            let raw = match decoder.next()? {
                                DecodedNode::End => Step::End,
                                DecodedNode::Element { tag, .. } => Step::Element(tag),
                                DecodedNode::Text(t) => {
                                    eval.raw_event(&xsac_xml::Event::Text(t.into()));
                                    Step::Text
                                }
                                DecodedNode::Close(t) => {
                                    eval.raw_event(&xsac_xml::Event::Close(t));
                                    Step::Close
                                }
                            };
                            match raw {
                                Step::End => break,
                                Step::Text => {}
                                Step::Element(tag) => {
                                    eval.raw_event(&xsac_xml::Event::Open(tag));
                                }
                                Step::Close => {
                                    if decoder.depth() < depth {
                                        break;
                                    }
                                }
                            }
                        }
                        clock.switch(&mut spans, Phase::Evaluate);
                        serve_readbacks(
                            &mut eval,
                            &mut decoder,
                            &mut handles,
                            &mut clock,
                            &mut spans,
                        )?;
                    }
                }
            }
        }
    }

    clock.switch(&mut spans, Phase::Evaluate);
    let result = eval.finish();
    clock.stop(&mut spans);
    let source = decoder.into_source();
    let reader_phases = source.reader.phases;
    let mut cost = source.reader.cost;
    // The reader's fetch/decrypt/hash time all accrued under the loop's
    // Decode span (the decoder's source is only pulled from
    // `decoder.next()`/`read_range`, both timed as Decode) — subtract it
    // so Decode reports decoding proper. Saturating: the clocks are
    // read at different instants, so tiny inversions are possible.
    let reader_nanos = reader_phases.get(Phase::Fetch)
        + reader_phases.get(Phase::Decrypt)
        + reader_phases.get(Phase::Hash);
    let mut phases = reader_phases;
    phases.add_nanos(Phase::Decode, spans.get(Phase::Decode).saturating_sub(reader_nanos));
    phases.add_nanos(Phase::Evaluate, spans.get(Phase::Evaluate));
    let evaluator_ops = (result.stats.token_ops + result.stats.events()) as u64;
    let result_bytes: usize = result
        .log
        .iter()
        .map(|item| match &item.node {
            xsac_core::output::LogNode::Element { tag, .. } => server.dict.name(*tag).len() * 2 + 5,
            xsac_core::output::LogNode::Text(t) => t.len(),
        })
        .sum();
    // The authorized result leaves the SOE over the same channel it came
    // in by (Table 1's "worst case where each data entering the SOE takes
    // part in the result").
    cost.bytes_to_soe += result_bytes as u64;
    let time = config.cost.time_of(&cost, evaluator_ops);
    Ok(SessionResult {
        log: result.log,
        output: result.output,
        stats: result.stats,
        cost,
        time,
        result_bytes,
        handles_created: handles.created,
        handles_peak: handles.peak,
        compiler: *policy.minimize_stats(),
        phases,
    })
}

/// Serves the evaluator's readback requests: transfers + verifies +
/// decodes the saved byte ranges ("pending elements or subtrees are read
/// back from the terminal", §5 — never re-analyzed, just delivered).
/// Each readback fetches exactly its saved range through the decoder's
/// source (metered and verified like any other access) and decodes it in
/// place — the document never needs a resident plaintext image. Served
/// contexts are dropped from the handle table, as are the contexts of
/// subtrees whose condition resolved false — the table stays O(pending).
fn serve_readbacks<S: ChunkStore>(
    eval: &mut Evaluator,
    decoder: &mut CursorDecoder<SoeSource<'_, S>>,
    handles: &mut HandleTable,
    clock: &mut SpanClock,
    spans: &mut PhaseProfile,
) -> Result<(), SessionError> {
    loop {
        for released in eval.take_released_handles() {
            handles.remove(released.0);
        }
        let reqs = eval.take_readbacks();
        if reqs.is_empty() {
            return Ok(());
        }
        for req in reqs {
            let ctx = handles.map.get(&req.subtree.0).expect("readback handle").clone();
            // Readback transfer + re-decode is decode-span work (its
            // reader costs are subtracted like any other fetch).
            clock.switch(spans, Phase::Decode);
            let data = decoder.read_range(&ctx)?;
            // The events borrow the decoder's range buffer, so the vector
            // is per-readback local; its length is O(delivered events),
            // and only actually-delivered subtrees pay it.
            let mut events: Vec<xsac_xml::Event<'_>> = Vec::new();
            Decoder::decode_range_at(data, ctx.start, &ctx, &mut events)?;
            clock.switch(spans, Phase::Evaluate);
            eval.readback_events(req.entry, &events);
            handles.remove(req.subtree.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsac_core::oracle::oracle_view_string;
    use xsac_core::output::reassemble_to_string;
    use xsac_core::Sign;
    use xsac_crypto::chunk::ChunkLayout;
    use xsac_crypto::IntegrityScheme;
    use xsac_xml::Document;

    fn key() -> TripleDes {
        TripleDes::new(*b"0123456789abcdefFEDCBA98")
    }

    fn tiny_layout() -> ChunkLayout {
        ChunkLayout { chunk_size: 256, fragment_size: 32 }
    }

    fn run(
        xml: &str,
        rules: &[(Sign, &str)],
        strategy: Strategy,
        scheme: IntegrityScheme,
    ) -> (String, AccessCost) {
        let doc = Document::parse(xml).unwrap();
        let k = key();
        let server = ServerDoc::prepare(&doc, &k, scheme, tiny_layout());
        let mut dict = server.dict.clone();
        let policy = Policy::parse("u", rules, &mut dict).unwrap();
        let config = SessionConfig { strategy, cost: CostModel::smartcard() };
        let res = run_session(&server, &k, &policy, None, &config).unwrap();
        (reassemble_to_string(&dict, &res.log), res.cost)
    }

    #[test]
    fn session_matches_oracle() {
        let xml = "<a><b><c>keep</c><d>1</d></b><e><f>drop drop drop</f></e></a>";
        let rules: &[(Sign, &str)] = &[(Sign::Permit, "//b[d=1]"), (Sign::Deny, "//e")];
        let doc = Document::parse(xml).unwrap();
        let mut dict = doc.dict.clone();
        let policy = Policy::parse("u", rules, &mut dict).unwrap();
        let expected = oracle_view_string(&doc, &policy);
        for strategy in [Strategy::Tcsbr, Strategy::BruteForce] {
            for scheme in IntegrityScheme::ALL {
                let (got, _) = run(xml, rules, strategy, scheme);
                assert_eq!(got, expected, "{strategy:?} {scheme:?}");
            }
        }
    }

    #[test]
    fn skipping_saves_bytes() {
        // A large denied subtree must not be transferred under Tcsbr.
        let mut xml = String::from("<a><keep>y</keep><deny>");
        for i in 0..200 {
            xml.push_str(&format!("<x>secret value number {i}</x>"));
        }
        xml.push_str("</deny></a>");
        let rules: &[(Sign, &str)] = &[(Sign::Permit, "/a"), (Sign::Deny, "/a/deny")];
        let (out_skip, cost_skip) = run(&xml, rules, Strategy::Tcsbr, IntegrityScheme::EcbMht);
        let (out_bf, cost_bf) = run(&xml, rules, Strategy::BruteForce, IntegrityScheme::EcbMht);
        assert_eq!(out_skip, out_bf);
        assert!(
            cost_skip.bytes_to_soe * 2 < cost_bf.bytes_to_soe,
            "skipping must save most communication: {} vs {}",
            cost_skip.bytes_to_soe,
            cost_bf.bytes_to_soe
        );
        assert!(cost_skip.bytes_decrypted < cost_bf.bytes_decrypted);
    }

    #[test]
    fn pending_subtree_never_decrypted_when_denied() {
        // ⊕ //a[x=1]//b with x=2: the b subtree is skipped pending and the
        // predicate resolves false — its bytes must never be read.
        let mut xml = String::from("<a><b>");
        for i in 0..100 {
            xml.push_str(&format!("<k>pending payload {i}</k>"));
        }
        xml.push_str("</b><x>2</x></a>");
        let rules: &[(Sign, &str)] = &[(Sign::Permit, "//a[x=1]//b")];
        let (out, cost) = run(&xml, rules, Strategy::Tcsbr, IntegrityScheme::EcbMht);
        assert_eq!(out, "");
        let (_, cost_bf) = run(&xml, rules, Strategy::BruteForce, IntegrityScheme::EcbMht);
        assert!(
            cost.bytes_to_soe * 2 < cost_bf.bytes_to_soe,
            "pending-denied subtree must stay on the terminal: {} vs {}",
            cost.bytes_to_soe,
            cost_bf.bytes_to_soe
        );
    }

    #[test]
    fn pending_subtree_read_back_when_granted() {
        let xml = "<a><b><k>v1</k><k>v2</k></b><x>1</x></a>";
        let rules: &[(Sign, &str)] = &[(Sign::Permit, "//a[x=1]//b")];
        let doc = Document::parse(xml).unwrap();
        let mut dict = doc.dict.clone();
        let policy = Policy::parse("u", rules, &mut dict).unwrap();
        let expected = oracle_view_string(&doc, &policy);
        let (got, _) = run(xml, rules, Strategy::Tcsbr, IntegrityScheme::EcbMht);
        assert_eq!(got, expected);
        assert!(got.contains("v1") && got.contains("v2"));
    }

    #[test]
    fn mht_terminal_hashing_amortized_per_chunk() {
        // End-to-end acceptance for the PR-2 leaf cache: however many
        // fragment fetches a session makes inside a chunk, terminal
        // hashing stays ≤ one chunk-length per chunk of the document —
        // even for brute force, which visits every fragment of every
        // chunk.
        let mut xml = String::from("<a>");
        for i in 0..120 {
            xml.push_str(&format!("<r><k>keep {i}</k><d>drop {i}</d><x>1</x></r>"));
        }
        xml.push_str("</a>");
        let doc = Document::parse(&xml).unwrap();
        let k = key();
        let server = ServerDoc::prepare(&doc, &k, IntegrityScheme::EcbMht, tiny_layout());
        let ciphertext_len = server.protected.ciphertext().len() as u64;
        // `//r[x=1]//k` leaves every k subtree pending until its r's x is
        // seen, forcing a backward readback jump per record — the access
        // pattern that would thrash a single-chunk cache.
        for rules in [&[(Sign::Permit, "//k")][..], &[(Sign::Permit, "//r[x=1]//k")][..]] {
            let mut dict = server.dict.clone();
            let policy = Policy::parse("u", rules, &mut dict).unwrap();
            for strategy in [Strategy::Tcsbr, Strategy::BruteForce] {
                let config = SessionConfig { strategy, cost: CostModel::smartcard() };
                let res = run_session(&server, &k, &policy, None, &config).unwrap();
                assert!(
                    res.cost.terminal_bytes_hashed <= ciphertext_len,
                    "{strategy:?} {rules:?}: terminal hashed {} > document size {} — \
                     leaf cache not amortizing",
                    res.cost.terminal_bytes_hashed,
                    ciphertext_len
                );
                assert!(res.cost.terminal_bytes_hashed > 0, "{strategy:?}: MHT must hash leaves");
            }
        }
    }

    #[test]
    fn readback_contexts_dropped_when_served_or_discarded() {
        // Readback-heavy session: every record's k subtree pends on its
        // record's x, resolved (alternately true and false) before the
        // next record opens. Contexts must be dropped as they are served
        // (x=1) or discarded (x=2), so the retained peak stays O(pending)
        // — a handful — while the total created grows with the document.
        let mut xml = String::from("<a>");
        for i in 0..150 {
            let x = 1 + (i % 2);
            xml.push_str(&format!("<r><k>payload number {i}</k><x>{x}</x></r>"));
        }
        xml.push_str("</a>");
        let rules: &[(Sign, &str)] = &[(Sign::Permit, "//r[x=1]//k")];
        let doc = Document::parse(&xml).unwrap();
        let k = key();
        let server = ServerDoc::prepare(&doc, &k, IntegrityScheme::EcbMht, tiny_layout());
        let mut dict = server.dict.clone();
        let policy = Policy::parse("u", rules, &mut dict).unwrap();
        let res = run_session(&server, &k, &policy, None, &SessionConfig::default()).unwrap();
        assert!(
            res.handles_created >= 100,
            "expected one pending skip per record, got {}",
            res.handles_created
        );
        assert!(
            res.handles_peak <= 8,
            "handle table must stay O(pending): peak {} for {} created",
            res.handles_peak,
            res.handles_created
        );
        // And the session still delivers the right view.
        let expected = oracle_view_string(&doc, &policy);
        assert_eq!(reassemble_to_string(&dict, &res.log), expected);
    }

    #[test]
    fn tampering_aborts_session() {
        let doc = Document::parse("<a><b>hello world hello</b></a>").unwrap();
        let k = key();
        let mut server = ServerDoc::prepare(&doc, &k, IntegrityScheme::EcbMht, tiny_layout());
        // Tamper one ciphertext byte.
        let n = server.protected.ciphertext().len();
        server.protected.ciphertext_mut()[n / 2] ^= 0x80;
        let mut dict = server.dict.clone();
        let policy = Policy::parse("u", &[(Sign::Permit, "//a")], &mut dict).unwrap();
        let res = run_session(&server, &k, &policy, None, &SessionConfig::default());
        assert!(matches!(res, Err(SessionError::Integrity(_))));
    }

    #[test]
    fn query_session() {
        let xml = "<r><f><age>70</age><n>A</n></f><f><age>50</age><n>B</n></f></r>";
        let doc = Document::parse(xml).unwrap();
        let k = key();
        let server = ServerDoc::prepare(&doc, &k, IntegrityScheme::EcbMht, tiny_layout());
        let mut dict = server.dict.clone();
        let policy = Policy::parse("u", &[(Sign::Permit, "/r")], &mut dict).unwrap();
        let q = Automaton::parse("//f[age > 65]", &mut dict).unwrap();
        let res = run_session(&server, &k, &policy, Some(&q), &SessionConfig::default()).unwrap();
        let got = reassemble_to_string(&dict, &res.log);
        assert_eq!(got, "<r><f><age>70</age><n>A</n></f></r>");
        assert!(res.time.total() > 0.0);
        assert!(res.result_bytes > 0);
    }
}
