//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses. The container building this repository has no network access, so
//! the real crates.io `criterion` cannot be fetched.
//!
//! Differences from the real crate, beyond the smaller API surface:
//!
//! * measurement is simpler (median of fixed-duration samples, no
//!   outlier analysis or regression fitting);
//! * every run appends nothing to `target/criterion` — instead it writes
//!   one machine-readable `BENCH_<name>.json` next to the repository
//!   root (override the directory with `XSAC_BENCH_DIR`), so perf
//!   trajectories live in the repo itself.

use std::fmt::{self, Display};
use std::hint::black_box;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Group name (e.g. `crypto/primitives`).
    pub group: String,
    /// Benchmark id within the group.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// 50th-percentile sample (== the median, kept explicit so every
    /// report row carries the same percentile schema).
    pub p50_ns: f64,
    /// 99th-percentile sample — with the shim's small sample counts this
    /// is the worst observed sample, a tail indicator rather than a
    /// statistically tight p99.
    pub p99_ns: f64,
    /// Declared per-iteration payload, if any.
    pub throughput: Option<Throughput>,
}

impl BenchRecord {
    /// Declared per-iteration byte payload, if any.
    pub fn throughput_bytes(&self) -> Option<u64> {
        match self.throughput {
            Some(Throughput::Bytes(b)) => Some(b),
            _ => None,
        }
    }

    /// Payload throughput in bytes/second, when declared in bytes.
    pub fn bytes_per_sec(&self) -> Option<f64> {
        self.throughput_bytes().map(|b| b as f64 / (self.ns_per_iter / 1e9))
    }

    /// Declared per-iteration element count, if any.
    pub fn throughput_elements(&self) -> Option<u64> {
        match self.throughput {
            Some(Throughput::Elements(n)) => Some(n),
            _ => None,
        }
    }

    /// Payload throughput in elements/second, when declared in elements.
    pub fn elements_per_sec(&self) -> Option<f64> {
        self.throughput_elements().map(|n| n as f64 / (self.ns_per_iter / 1e9))
    }
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Declared per-iteration payload for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function/parameter` id.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    result_ns: f64,
    p50_ns: f64,
    p99_ns: f64,
}

impl Bencher {
    /// Measures `f`: median over `sample_size` samples, each long enough
    /// to amortize timer overhead.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: how many iterations fit ~25 ms?
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed().max(Duration::from_nanos(20));
        let per_sample =
            (Duration::from_millis(25).as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = samples[samples.len() / 2];
        self.p50_ns = self.result_ns;
        self.p99_ns = samples[((samples.len() - 1) * 99).div_ceil(100)];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration payload of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            result_ns: f64::NAN,
            p50_ns: f64::NAN,
            p99_ns: f64::NAN,
        };
        f(&mut b);
        self.record(id, &b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            result_ns: f64::NAN,
            p50_ns: f64::NAN,
            p99_ns: f64::NAN,
        };
        f(&mut b, input);
        self.record(id, &b);
        self
    }

    /// Ends the group (kept for API compatibility; recording is eager).
    pub fn finish(&mut self) {}

    fn record(&mut self, id: BenchmarkId, b: &Bencher) {
        let rec = BenchRecord {
            group: self.name.clone(),
            name: id.0,
            ns_per_iter: b.result_ns,
            p50_ns: b.p50_ns,
            p99_ns: b.p99_ns,
            throughput: self.throughput,
        };
        if let Some(bps) = rec.bytes_per_sec() {
            println!(
                "{:<28} {:<28} {:>12.1} ns/iter {:>10.2} MB/s",
                rec.group,
                rec.name,
                rec.ns_per_iter,
                bps / 1e6
            );
        } else if let Some(eps) = rec.elements_per_sec() {
            println!(
                "{:<28} {:<28} {:>12.1} ns/iter {:>10.2} Melem/s",
                rec.group,
                rec.name,
                rec.ns_per_iter,
                eps / 1e6
            );
        } else {
            println!("{:<28} {:<28} {:>12.1} ns/iter", rec.group, rec.name, rec.ns_per_iter);
        }
        let _ = self.criterion;
        RESULTS.lock().expect("results lock").push(rec);
    }
}

/// Benchmark driver (constructed by `criterion_group!`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size: 20 }
    }

    /// Ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// All records measured so far in this process.
pub fn take_results() -> Vec<BenchRecord> {
    RESULTS.lock().expect("results lock").clone()
}

/// Writes `BENCH_<bench-name>.json` (called by `criterion_main!`).
pub fn write_report() {
    let results = take_results();
    if results.is_empty() {
        return;
    }
    let name = bench_name();
    let path = output_dir().join(format!("BENCH_{name}.json"));
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"bench\": {:?},\n  \"cpus\": {},\n  \"results\": [\n", name, cpus));
    let opt = |v: Option<String>| v.unwrap_or_else(|| "null".into());
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        body.push_str(&format!(
            "    {{\"group\": {:?}, \"name\": {:?}, \"ns_per_iter\": {:.1}, \"p50_ns\": {:.1}, \"p99_ns\": {:.1}, \"throughput_bytes\": {}, \"bytes_per_sec\": {}, \"throughput_elements\": {}, \"elements_per_sec\": {}}}{}\n",
            r.group,
            r.name,
            r.ns_per_iter,
            r.p50_ns,
            r.p99_ns,
            opt(r.throughput_bytes().map(|t| t.to_string())),
            opt(r.bytes_per_sec().map(|b| format!("{b:.1}"))),
            opt(r.throughput_elements().map(|t| t.to_string())),
            opt(r.elements_per_sec().map(|e| format!("{e:.1}"))),
            sep
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(body.as_bytes())) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// The bench target's name: executable stem minus cargo's `-<hash>`.
fn bench_name() -> String {
    let stem = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    }
}

/// `XSAC_BENCH_DIR`, else the enclosing repository root, else `.`.
fn output_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("XSAC_BENCH_DIR") {
        return PathBuf::from(dir);
    }
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|_| std::env::current_dir())
        .unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = start.clone();
    loop {
        if dir.join(".git").exists() {
            return dir;
        }
        if !dir.pop() {
            return start;
        }
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups, then writing the report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b =
            Bencher { sample_size: 3, result_ns: f64::NAN, p50_ns: f64::NAN, p99_ns: f64::NAN };
        b.iter(|| std::hint::black_box(1u64.wrapping_mul(3)));
        assert!(b.result_ns.is_finite() && b.result_ns > 0.0);
        assert_eq!(b.p50_ns, b.result_ns, "p50 is the median sample");
        assert!(b.p99_ns >= b.p50_ns, "the tail cannot be faster than the median");
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn throughput_math() {
        let r = BenchRecord {
            group: "g".into(),
            name: "n".into(),
            ns_per_iter: 1e9,
            p50_ns: 1e9,
            p99_ns: 2e9,
            throughput: Some(Throughput::Bytes(1_000_000)),
        };
        assert!((r.bytes_per_sec().unwrap() - 1_000_000.0).abs() < 1e-6);
        assert!(r.elements_per_sec().is_none());
        let e = BenchRecord { throughput: Some(Throughput::Elements(500)), ..r };
        assert!((e.elements_per_sec().unwrap() - 500.0).abs() < 1e-9);
        assert!(e.bytes_per_sec().is_none());
    }
}
