//! `any::<T>()` — default strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_and_tuples() {
        let mut r = TestRng::for_case("arb", 1);
        let a: [u8; 20] = any().generate(&mut r);
        assert_eq!(a.len(), 20);
        let _: (u32, u8) = any().generate(&mut r);
        let b: bool = any().generate(&mut r);
        let _ = b;
    }

    #[test]
    fn u8_covers_domain() {
        let mut r = TestRng::for_case("arb-u8", 1);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[u8::arbitrary(&mut r) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "u8 generation must cover the domain");
    }
}
