//! `prop::collection` — vector strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Element-count range for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "vec strategy: empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_in_range() {
        let s = vec(any::<u8>(), 2..5);
        let mut r = TestRng::for_case("vec", 1);
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()));
        }
    }
}
