//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses. The container building this repository has no network access, so
//! the real crates.io `proptest` cannot be fetched.
//!
//! What it keeps: the `proptest!` / `prop_assert*` / `prop_assume!` /
//! `prop_oneof!` macros, the [`Strategy`](strategy::Strategy) trait with `prop_map` and
//! `prop_recursive`, `any::<T>()`, ranges and string literals as
//! strategies, `prop::collection::vec`, `prop::option::of`,
//! `sample::select` and `string::string_regex` (a small regex subset —
//! character classes with ranges and `&&[^…]` subtraction, `.`, and
//! `{m,n}` repetition — exactly what the test suite's patterns need).
//!
//! What it drops: shrinking. A failing case panics with the generated
//! inputs formatted into the assertion message (every property test in
//! this workspace already interpolates its inputs), plus the attempt
//! number so the failure is reproducible — generation is deterministic
//! per (test name, attempt).

pub mod test_runner;

pub mod strategy;

pub mod arbitrary;

pub mod collection;

pub mod option;

pub mod sample;

pub mod string;

/// The `prop::` namespace as the real crate's prelude exposes it.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
    pub use crate::string;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// One property-test case failed (returned by generated closures; the
/// `proptest!` runner panics on `Fail` and resamples on `Reject`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    ::core::stringify!($cond),
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}", lhs, rhs),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left == right`: {}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+),
                    lhs,
                    rhs
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs == rhs {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: `left != right`\n  both: {:?}", lhs),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs == rhs {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left != right`: {}\n  both: {:?}",
                    ::std::format!($($fmt)+),
                    lhs
                ),
            ));
        }
    }};
}

/// Rejects the current case; the runner draws a fresh one (rejections do
/// not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::core::stringify!($cond),
            ));
        }
    };
}

/// Weighted / unweighted union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// The test harness macro: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(clippy::all)]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut accepted: u32 = 0;
            let mut attempt: u64 = 0;
            let max_attempts = u64::from(config.cases) * 10 + 100;
            while accepted < config.cases {
                attempt += 1;
                assert!(
                    attempt <= max_attempts,
                    "proptest: too many rejected cases ({} accepted of {} wanted)",
                    accepted,
                    config.cases
                );
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    attempt,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed (attempt {} of {}): {}",
                            attempt,
                            stringify!($name),
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}
