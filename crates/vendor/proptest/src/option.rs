//! `prop::option` — optional values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `None` one time in four, `Some(inner)` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.ratio(1, 4) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn produces_both_variants() {
        let s = of(Just(7u8));
        let mut r = TestRng::for_case("opt", 1);
        let vals: Vec<Option<u8>> = (0..100).map(|_| s.generate(&mut r)).collect();
        assert!(vals.iter().any(Option::is_none));
        assert!(vals.iter().any(Option::is_some));
    }
}
