//! `sample::select` — uniform choice from a fixed slice.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniformly selects (and clones) one of `options`.
pub fn select<T: Clone + 'static>(options: &'static [T]) -> Select<T> {
    assert!(!options.is_empty(), "select: empty options");
    Select { options }
}

/// See [`select`].
#[derive(Clone, Copy)]
pub struct Select<T: 'static> {
    options: &'static [T],
}

impl<T: Clone + 'static> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_options() {
        let s = select(&["a", "b", "c"]);
        let mut r = TestRng::for_case("sel", 1);
        let mut seen = [false; 3];
        for _ in 0..100 {
            match s.generate(&mut r) {
                "a" => seen[0] = true,
                "b" => seen[1] = true,
                _ => seen[2] = true,
            }
        }
        assert_eq!(seen, [true; 3]);
    }
}
