//! The [`Strategy`] trait and core combinators (generation only).

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A value generator. Unlike the real proptest there is no shrinking
/// machinery: a strategy is just a deterministic function of the RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Recursive structures: `self` is the leaf case and `recurse` wraps a
    /// strategy for the previous level. `depth` bounds the nesting; the
    /// size hints of the real API are accepted and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            let rec = recurse(level).boxed();
            let leaf = base.clone();
            // One part leaf to three parts recursion keeps generated trees
            // non-trivial while the depth bound caps their height.
            level = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                if rng.ratio(1, 4) {
                    leaf.generate(rng)
                } else {
                    rec.generate(rng)
                }
            }));
        }
        level
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(pub(crate) Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// New union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof!: all weights are zero");
        Union { arms, total }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone(), total: self.total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum checked in Union::new")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "range strategy: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "range strategy: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// String literals are regex strategies (panics on an unsupported
/// pattern; `string::string_regex` reports the error instead).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e:?}"))
            .generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 1)
    }

    #[test]
    fn map_and_just() {
        let s = Just(21u64).prop_map(|x| x * 2);
        assert_eq!(s.generate(&mut rng()), 42);
    }

    #[test]
    fn union_respects_weights() {
        let s = Union::new(vec![(0, Just(1u8).boxed()), (5, Just(2u8).boxed())]);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r), 2, "zero-weight arm must never fire");
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (10u16..20).generate(&mut r);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn recursive_terminates() {
        let leaf = Just("x".to_string());
        let s = leaf.prop_recursive(3, 16, 3, |elem| {
            (elem.clone(), elem).prop_map(|(a, b)| format!("({a}{b})"))
        });
        let mut r = rng();
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!(v.len() < 4096, "depth bound must cap growth: {}", v.len());
        }
    }
}
