//! `string::string_regex` — string generation from a small regex subset.
//!
//! Supported syntax (all the workspace's patterns need):
//!
//! * `.` — any char except `\n` (mostly printable ASCII, with occasional
//!   markup metacharacters, control chars and non-ASCII to keep parser
//!   robustness tests honest);
//! * `[...]` — character class with literals and `a-z` ranges, leading
//!   `^` negation (over printable ASCII), and the regex crate's
//!   `&&[^...]` subtraction;
//! * `x{m,n}` / `x{n}` — repetition of the preceding atom;
//! * plain literal characters, `\` escaping the next one.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Pattern rejected by the subset parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

#[derive(Clone, Debug)]
enum CharGen {
    /// `.`
    Dot,
    /// Explicit alternatives, already expanded.
    OneOf(Vec<char>),
}

#[derive(Clone, Debug)]
struct Atom {
    gen: CharGen,
    min: usize,
    max: usize,
}

/// Strategy generating strings matching the pattern.
#[derive(Clone, Debug)]
pub struct RegexGeneratorStrategy {
    atoms: Vec<Atom>,
}

/// Occasional non-alphanumeric output of `.` (markup metacharacters,
/// controls, non-ASCII) so robustness properties see hostile input.
const DOT_SPICE: &[char] =
    &['<', '>', '&', '\'', '"', ';', '\t', '\r', '\u{0}', '\u{7f}', 'é', 'λ', '中', '😀'];

impl Strategy for RegexGeneratorStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let span = (atom.max - atom.min + 1) as u64;
            let n = atom.min + rng.below(span) as usize;
            for _ in 0..n {
                out.push(match &atom.gen {
                    CharGen::OneOf(chars) => chars[rng.below(chars.len() as u64) as usize],
                    CharGen::Dot => {
                        if rng.ratio(1, 8) {
                            DOT_SPICE[rng.below(DOT_SPICE.len() as u64) as usize]
                        } else {
                            char::from(0x20 + rng.below(0x5F) as u8)
                        }
                    }
                });
            }
        }
        out
    }
}

/// Parses `pattern`, returning a string strategy for it.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let gen = match chars[i] {
            '.' => {
                i += 1;
                CharGen::Dot
            }
            '[' => {
                let (set, next) = parse_class(&chars, i)?;
                i = next;
                CharGen::OneOf(set)
            }
            '\\' => {
                let c = *chars.get(i + 1).ok_or_else(|| Error("dangling escape".into()))?;
                i += 2;
                CharGen::OneOf(vec![c])
            }
            '{' | '}' | ']' | '*' | '+' | '?' | '(' | ')' | '|' => {
                return Err(Error(format!("unsupported regex syntax at char {i} in {pattern:?}")));
            }
            c => {
                i += 1;
                CharGen::OneOf(vec![c])
            }
        };
        let (min, max, next) = parse_quantifier(&chars, i)?;
        i = next;
        atoms.push(Atom { gen, min, max });
    }
    Ok(RegexGeneratorStrategy { atoms })
}

/// Parses `{n}` / `{m,n}` at `i`, or defaults to exactly-one.
fn parse_quantifier(chars: &[char], i: usize) -> Result<(usize, usize, usize), Error> {
    if chars.get(i) != Some(&'{') {
        return Ok((1, 1, i));
    }
    let close =
        chars[i..].iter().position(|&c| c == '}').ok_or_else(|| Error("unclosed {".into()))? + i;
    let body: String = chars[i + 1..close].iter().collect();
    let parse =
        |s: &str| s.trim().parse::<usize>().map_err(|e| Error(format!("bad bound {s:?}: {e}")));
    let (min, max) = match body.split_once(',') {
        None => {
            let n = parse(&body)?;
            (n, n)
        }
        Some((lo, hi)) => (parse(lo)?, parse(hi)?),
    };
    if min > max {
        return Err(Error(format!("inverted bounds {{{body}}}")));
    }
    Ok((min, max, close + 1))
}

/// Parses a `[...]` class starting at `open`; returns the expanded
/// alternatives and the index one past `]`.
fn parse_class(chars: &[char], open: usize) -> Result<(Vec<char>, usize), Error> {
    let mut i = open + 1;
    let negated = chars.get(i) == Some(&'^');
    if negated {
        i += 1;
    }
    let mut include = Vec::new();
    let mut exclude = Vec::new();
    loop {
        match chars.get(i) {
            None => return Err(Error("unclosed [".into())),
            Some(']') => {
                i += 1;
                break;
            }
            Some('&') if chars.get(i + 1) == Some(&'&') && chars.get(i + 2) == Some(&'[') => {
                // Class subtraction `&&[^...]` (the only `&&` form used).
                if chars.get(i + 3) != Some(&'^') {
                    return Err(Error("only `&&[^...]` subtraction is supported".into()));
                }
                let (sub, next) = parse_class(chars, i + 2)?;
                // `parse_class` on `[^...]` negates over ASCII; recover the
                // raw listed chars by re-negating against the same domain.
                let raw: Vec<char> = printable_ascii().filter(|c| !sub.contains(c)).collect();
                exclude.extend(raw);
                i = next;
                if chars.get(i) != Some(&']') {
                    return Err(Error("subtraction must end the class".into()));
                }
                i += 1;
                break;
            }
            Some('\\') => {
                let c =
                    *chars.get(i + 1).ok_or_else(|| Error("dangling escape in class".into()))?;
                include.push(c);
                i += 2;
            }
            Some(&lo) => {
                if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
                    let hi = chars[i + 2];
                    if lo > hi {
                        return Err(Error(format!("inverted range {lo}-{hi}")));
                    }
                    include.extend(lo..=hi);
                    i += 3;
                } else {
                    include.push(lo);
                    i += 1;
                }
            }
        }
    }
    let set: Vec<char> = if negated {
        printable_ascii().filter(|c| !include.contains(c)).collect()
    } else {
        include.into_iter().filter(|c| !exclude.contains(c)).collect()
    };
    if set.is_empty() {
        return Err(Error("empty character class".into()));
    }
    Ok((set, i))
}

fn printable_ascii() -> impl Iterator<Item = char> {
    (0x20u8..0x7F).map(char::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, n: usize) -> Vec<String> {
        let s = string_regex(pattern).unwrap();
        let mut rng = TestRng::for_case(pattern, 1);
        (0..n).map(|_| s.generate(&mut rng)).collect()
    }

    #[test]
    fn dot_repetition() {
        for s in gen(".{0,16}", 200) {
            assert!(s.chars().count() <= 16);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn classes_and_ranges() {
        for s in gen("[a-z0-9 ]{0,24}", 200) {
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' '));
            assert!(s.len() <= 24);
        }
    }

    #[test]
    fn concatenated_atoms() {
        for s in gen("[a-z][a-z0-9]{0,6}", 200) {
            assert!(!s.is_empty() && s.len() <= 7);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn subtraction_class() {
        // Printable ASCII minus `<` and `&` — the XML-text pattern.
        for s in gen("[ -~&&[^<&]]{0,16}", 300) {
            assert!(s.chars().all(|c| (' '..='~').contains(&c) && c != '<' && c != '&'), "{s:?}");
        }
    }

    #[test]
    fn exact_count_and_literals() {
        for s in gen("ab{3}", 20) {
            assert_eq!(s, "abbb");
        }
    }

    #[test]
    fn bad_patterns_error() {
        assert!(string_regex("(group)").is_err());
        assert!(string_regex("[unclosed").is_err());
        assert!(string_regex("a{2,1}").is_err());
    }
}
