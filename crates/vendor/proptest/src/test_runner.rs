//! Deterministic per-case RNG, configuration and case outcomes.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
    /// Unused (kept so `..Default::default()` spellings keep working).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; draw a fresh case.
    Reject(String),
    /// An assertion failed; abort the property.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected assumption.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// SplitMix64 seeded from (test name, attempt number): every case is
/// reproducible from the attempt number printed on failure.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one case of one property.
    pub fn for_case(test_name: &str, attempt: u64) -> TestRng {
        // FNV-1a over the name, mixed with the attempt.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// `true` with probability `num / den`.
    pub fn ratio(&mut self, num: u32, den: u32) -> bool {
        self.below(u64::from(den)) < u64::from(num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name_and_attempt() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_in_bounds() {
        let mut r = TestRng::for_case("t", 1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
