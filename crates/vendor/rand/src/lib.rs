//! Offline stand-in for the subset of the `rand` 0.9 API this workspace
//! uses (`Rng::random_range` / `random_bool`, `SeedableRng::seed_from_u64`,
//! `rngs::SmallRng`, `seq::IndexedRandom::choose`).
//!
//! The container building this repository has no network access, so the
//! real crates.io `rand` cannot be fetched; dataset generation only needs
//! a fast, *deterministic* generator, which this provides (xoshiro256++
//! seeded via SplitMix64 — the same construction the real `SmallRng`
//! uses on 64-bit targets, so statistical quality is comparable).
//!
//! Not cryptographic. Never used for keys — the workspace's keys are
//! fixed test constants.

/// Core RNG trait: the methods the workspace calls.
pub trait Rng {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, as the real rand does.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (the workspace only uses `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// xoshiro256++ — small, fast, deterministic.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden state; splitmix64 of any
            // seed cannot produce it across four outputs, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [mut s0, mut s1, mut s2, mut s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

/// What can serve as the argument of [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Uniform sample from `self`.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Rejection-free (modulo-bias-negligible for test workloads) bounded
/// sample via 128-bit multiply-shift.
fn bounded(rng: &mut impl Rng, bound: u64) -> u64 {
    debug_assert!(bound > 0, "empty range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

/// Types uniformly samplable from a bounded interval. The blanket
/// `SampleRange` impls below mirror the real rand's shape so that
/// integer-literal fallback resolves `random_range(1..100)` to `i32`
/// exactly as it does against crates.io rand.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`hi` exclusive) or `[lo, hi]`
    /// (`hi` inclusive).
    fn sample_interval<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> $t {
                // Sign-extending casts make `hi - lo` the correct span for
                // signed types too.
                let mut span = (hi as u64).wrapping_sub(lo as u64);
                if inclusive {
                    span = span.wrapping_add(1);
                    if span == 0 {
                        // Full 64-bit domain.
                        return rng.next_u64() as $t;
                    }
                }
                lo.wrapping_add(bounded(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_interval<R: Rng>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "random_range: empty range");
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "random_range: empty range");
        T::sample_interval(rng, lo, hi, true)
    }
}

pub mod seq {
    use super::Rng;

    /// Slice sampling (the workspace uses `choose` only).
    pub trait IndexedRandom {
        /// Element type.
        type Output;

        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::bounded(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::IndexedRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = r.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u8 = r.random_range(0..26u8);
            assert!(y < 26);
            let z: u64 = r.random_range(1..=10);
            assert!((1..=10).contains(&z));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut r = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = SmallRng::seed_from_u64(5);
        let opts = ["a", "b", "c"];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let c = opts.choose(&mut r).unwrap();
            seen[opts.iter().position(|o| o == c).unwrap()] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
