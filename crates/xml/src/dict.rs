//! Tag dictionary: interning of element names.
//!
//! The paper assumes "the document structure is compressed thanks to a
//! dictionary of tags" (§4.1, citing XGRIND/XMill-style compressors). All
//! components of the workspace share this dictionary: the parser interns
//! names, the automata compare [`TagId`]s, and the skip-index encodings
//! derive their bit widths from the dictionary size.

use std::collections::HashMap;
use std::fmt;

/// Reserved dictionary entry used to represent text nodes uniformly in the
/// skip-index encodings (a text node is a leaf whose "tag" is `#text` and
/// whose subtree size is its byte length).
pub const TEXT_TAG_NAME: &str = "#text";

/// An interned element name. Comparing two `TagId`s is equivalent to
/// comparing the underlying names.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(pub u32);

impl TagId {
    /// The `#text` pseudo-tag (always entry 0 of every dictionary).
    pub const TEXT: TagId = TagId(0);

    /// Index of this tag in the dictionary.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A bidirectional mapping between element names and [`TagId`]s.
///
/// Entry 0 is always the [`TEXT_TAG_NAME`] pseudo-tag.
#[derive(Clone, Debug)]
pub struct TagDict {
    names: Vec<String>,
    ids: HashMap<String, TagId>,
}

impl Default for TagDict {
    fn default() -> Self {
        Self::new()
    }
}

impl TagDict {
    /// Creates a dictionary containing only the `#text` pseudo-tag.
    pub fn new() -> Self {
        let mut d = TagDict { names: Vec::new(), ids: HashMap::new() };
        d.intern(TEXT_TAG_NAME);
        d
    }

    /// Interns `name`, returning its id (existing or freshly allocated).
    pub fn intern(&mut self, name: &str) -> TagId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = TagId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<TagId> {
        self.ids.get(name).copied()
    }

    /// Resolves an id back to its name. Panics on a foreign id.
    pub fn name(&self, id: TagId) -> &str {
        &self.names[id.index()]
    }

    /// Number of entries, including the `#text` pseudo-tag.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when only the `#text` pseudo-tag is present.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// Number of *element* tags (excluding `#text`), i.e. the `Nt` of §4.1.
    pub fn element_tag_count(&self) -> usize {
        self.names.len() - 1
    }

    /// Iterates over `(TagId, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (TagId(i as u32), n.as_str()))
    }

    /// Serialized size of the dictionary in bytes (names + separators),
    /// charged to the structure overhead of the encodings.
    pub fn serialized_len(&self) -> usize {
        self.names.iter().map(|n| n.len() + 1).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_tag_is_entry_zero() {
        let d = TagDict::new();
        assert_eq!(d.get(TEXT_TAG_NAME), Some(TagId::TEXT));
        assert_eq!(d.name(TagId::TEXT), TEXT_TAG_NAME);
        assert_eq!(d.len(), 1);
        assert_eq!(d.element_tag_count(), 0);
        assert!(d.is_empty());
    }

    #[test]
    fn intern_is_idempotent() {
        let mut d = TagDict::new();
        let a = d.intern("Folder");
        let b = d.intern("Admin");
        assert_ne!(a, b);
        assert_eq!(d.intern("Folder"), a);
        assert_eq!(d.len(), 3);
        assert_eq!(d.element_tag_count(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn resolves_names_in_id_order() {
        let mut d = TagDict::new();
        let ids: Vec<TagId> = ["a", "b", "c"].iter().map(|n| d.intern(n)).collect();
        assert_eq!(d.name(ids[0]), "a");
        assert_eq!(d.name(ids[2]), "c");
        let collected: Vec<&str> = d.iter().map(|(_, n)| n).collect();
        assert_eq!(collected, vec![TEXT_TAG_NAME, "a", "b", "c"]);
    }

    #[test]
    fn serialized_len_counts_names_and_separators() {
        let mut d = TagDict::new();
        d.intern("ab");
        // "#text" + sep + "ab" + sep
        assert_eq!(d.serialized_len(), 6 + 3);
    }
}
