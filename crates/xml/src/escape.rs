//! Minimal XML text escaping/unescaping.

use std::borrow::Cow;

/// Escapes `&`, `<`, `>`, `"` for element content and attribute values.
pub fn escape(s: &str) -> Cow<'_, str> {
    if !s.bytes().any(|b| matches!(b, b'&' | b'<' | b'>' | b'"')) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Resolves the five predefined entities plus decimal/hex character
/// references. Unknown entities are preserved verbatim.
pub fn unescape(s: &str) -> Cow<'_, str> {
    if !s.contains('&') {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        if let Some(end) = rest.find(';') {
            let entity = &rest[1..end];
            let resolved: Option<char> = match entity {
                "amp" => Some('&'),
                "lt" => Some('<'),
                "gt" => Some('>'),
                "quot" => Some('"'),
                "apos" => Some('\''),
                _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                    u32::from_str_radix(&entity[2..], 16).ok().and_then(char::from_u32)
                }
                _ if entity.starts_with('#') => {
                    entity[1..].parse::<u32>().ok().and_then(char::from_u32)
                }
                _ => None,
            };
            match resolved {
                Some(c) => {
                    out.push(c);
                    rest = &rest[end + 1..];
                }
                None => {
                    out.push('&');
                    rest = &rest[1..];
                }
            }
        } else {
            out.push('&');
            rest = &rest[1..];
        }
    }
    out.push_str(rest);
    Cow::Owned(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_passthrough_borrows() {
        assert!(matches!(escape("plain text"), Cow::Borrowed(_)));
    }

    #[test]
    fn escape_special_chars() {
        assert_eq!(escape(r#"a<b&c>d"e"#), "a&lt;b&amp;c&gt;d&quot;e");
    }

    #[test]
    fn unescape_entities() {
        assert_eq!(unescape("a&lt;b&amp;c&gt;d&quot;e&apos;f"), "a<b&c>d\"e'f");
    }

    #[test]
    fn unescape_char_refs() {
        assert_eq!(unescape("&#65;&#x42;&#X43;"), "ABC");
    }

    #[test]
    fn unescape_preserves_unknown() {
        assert_eq!(unescape("&unknown; & plain"), "&unknown; & plain");
    }

    #[test]
    fn roundtrip() {
        let original = r#"x < y && z > "quoted" 'single'"#;
        assert_eq!(unescape(&escape(original)), original);
    }
}
