//! The SAX-style event model (§3.1: "the evaluator is fed by an event-based
//! parser raising open, value and close events").

use crate::dict::TagId;
use std::borrow::Cow;

/// A streaming document event.
///
/// Text is carried as a [`Cow`] so that events can either borrow from the
/// input buffer (parser) or own decoded bytes (skip-index decoder,
/// decrypted fragments).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event<'a> {
    /// An opening tag.
    Open(TagId),
    /// Text content directly under the current element.
    Text(Cow<'a, str>),
    /// The matching closing tag.
    Close(TagId),
}

impl<'a> Event<'a> {
    /// Converts to an owned (`'static`) event.
    pub fn into_owned(self) -> Event<'static> {
        match self {
            Event::Open(t) => Event::Open(t),
            Event::Text(s) => Event::Text(Cow::Owned(s.into_owned())),
            Event::Close(t) => Event::Close(t),
        }
    }

    /// True for [`Event::Open`].
    pub fn is_open(&self) -> bool {
        matches!(self, Event::Open(_))
    }

    /// True for [`Event::Close`].
    pub fn is_close(&self) -> bool {
        matches!(self, Event::Close(_))
    }

    /// The tag of an open/close event, if any.
    pub fn tag(&self) -> Option<TagId> {
        match self {
            Event::Open(t) | Event::Close(t) => Some(*t),
            Event::Text(_) => None,
        }
    }
}

/// A sink consuming a stream of events.
///
/// Implemented by the access-control evaluator, the serializer and the
/// statistics collector; lets every producer (parser, decoder, tree walker)
/// drive every consumer.
pub trait EventSink {
    /// Handles one event. The default pipeline never feeds events after an
    /// error is signalled by the caller.
    fn event(&mut self, ev: &Event<'_>);
}

impl<F: FnMut(&Event<'_>)> EventSink for F {
    fn event(&mut self, ev: &Event<'_>) {
        self(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_accessors() {
        let o = Event::Open(TagId(3));
        let c = Event::Close(TagId(3));
        let t = Event::Text(Cow::Borrowed("hi"));
        assert!(o.is_open() && !o.is_close());
        assert!(c.is_close() && !c.is_open());
        assert_eq!(o.tag(), Some(TagId(3)));
        assert_eq!(t.tag(), None);
        assert!(!t.is_open() && !t.is_close());
    }

    #[test]
    fn into_owned_preserves_content() {
        let t = Event::Text(Cow::Borrowed("abc"));
        let owned = t.clone().into_owned();
        assert_eq!(owned, t);
    }

    #[test]
    fn closures_are_sinks() {
        let mut n = 0usize;
        {
            let mut sink = |_: &Event<'_>| n += 1;
            sink.event(&Event::Open(TagId(1)));
            sink.event(&Event::Close(TagId(1)));
        }
        assert_eq!(n, 2);
    }
}
