//! Streaming XML substrate for the xsac workspace.
//!
//! The paper's Secure Operating Environment (SOE) consumes XML as a stream of
//! SAX-style events (`open`, `value`, `close` — §3.1 of Bouganim et al.,
//! VLDB 2004). This crate provides:
//!
//! * [`event::Event`] — the event model, with tags interned as [`TagId`]s so
//!   the access-control automata compare integers instead of strings;
//! * [`dict::TagDict`] — the tag dictionary the paper assumes for
//!   dictionary-based structure compression (§4.1);
//! * [`parser::Parser`] — a pull parser producing events from XML text;
//! * [`tree::Document`] — an arena-based document tree used by the data
//!   generators, the server-side encoder and the non-streaming oracle;
//! * [`writer`] — serialization back to XML text;
//! * [`stats`] — the document statistics reported in Table 2 of the paper.

pub mod dict;
pub mod escape;
pub mod event;
pub mod parser;
pub mod stats;
pub mod tagset;
pub mod tree;
pub mod writer;

pub use dict::{TagDict, TagId, TEXT_TAG_NAME};
pub use event::Event;
pub use parser::{ParseError, Parser};
pub use stats::DocStats;
pub use tagset::TagSet;
pub use tree::{Document, Node, NodeId};
