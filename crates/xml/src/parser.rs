//! A pull parser producing [`Event`]s from XML text.
//!
//! The parser covers the XML subset exercised by the paper's datasets:
//! elements, attributes, character data, entity references, comments,
//! processing instructions, CDATA sections and a document prolog.
//!
//! Following §2 of the paper ("Attributes are handled in the model similarly
//! to elements"), attributes are surfaced as child elements whose names are
//! prefixed with `@`, opened (and closed) immediately after their owner
//! element opens.

use crate::dict::{TagDict, TagId};
use crate::escape::unescape;
use crate::event::Event;
use std::borrow::Cow;
use std::fmt;

/// Parser error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parser configuration.
#[derive(Debug, Clone)]
pub struct ParserConfig {
    /// Drop text nodes that contain only whitespace (defaults to `true`,
    /// matching the data-oriented documents of the paper).
    pub skip_whitespace_text: bool,
    /// Surface attributes as `@name` child elements (defaults to `true`).
    pub attributes_as_elements: bool,
}

impl Default for ParserConfig {
    fn default() -> Self {
        ParserConfig { skip_whitespace_text: true, attributes_as_elements: true }
    }
}

/// A pull parser over a UTF-8 XML string.
///
/// Tags are interned into the supplied [`TagDict`] as they are encountered.
pub struct Parser<'a, 'd> {
    input: &'a str,
    pos: usize,
    dict: &'d mut TagDict,
    config: ParserConfig,
    /// Stack of currently open elements.
    open: Vec<TagId>,
    /// Attribute events queued after an element open.
    queued: Vec<Event<'a>>,
    finished: bool,
}

impl<'a, 'd> Parser<'a, 'd> {
    /// Creates a parser with the default configuration.
    pub fn new(input: &'a str, dict: &'d mut TagDict) -> Self {
        Self::with_config(input, dict, ParserConfig::default())
    }

    /// Creates a parser with an explicit configuration.
    pub fn with_config(input: &'a str, dict: &'d mut TagDict, config: ParserConfig) -> Self {
        Parser {
            input,
            pos: 0,
            dict,
            config,
            open: Vec::new(),
            queued: Vec::new(),
            finished: false,
        }
    }

    /// Current depth (number of open elements).
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { offset: self.pos, message: message.into() })
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let rest = self.rest();
        let trimmed = rest.trim_start_matches([' ', '\t', '\r', '\n']);
        self.pos += rest.len() - trimmed.len();
    }

    fn take_name(&mut self) -> Result<&'a str, ParseError> {
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !is_name_char(*c))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return self.err("expected a name");
        }
        self.pos += end;
        Ok(&rest[..end])
    }

    /// Skips `<!-- ... -->`, `<? ... ?>`, `<!DOCTYPE ...>` constructs.
    fn skip_misc(&mut self) -> Result<bool, ParseError> {
        let rest = self.rest();
        if let Some(stripped) = rest.strip_prefix("<!--") {
            match stripped.find("-->") {
                Some(i) => {
                    self.pos += 4 + i + 3;
                    Ok(true)
                }
                None => self.err("unterminated comment"),
            }
        } else if rest.starts_with("<?") {
            match rest.find("?>") {
                Some(i) => {
                    self.pos += i + 2;
                    Ok(true)
                }
                None => self.err("unterminated processing instruction"),
            }
        } else if rest.starts_with("<!DOCTYPE") {
            // No internal-subset support; skip to the first '>'.
            match rest.find('>') {
                Some(i) => {
                    self.pos += i + 1;
                    Ok(true)
                }
                None => self.err("unterminated DOCTYPE"),
            }
        } else {
            Ok(false)
        }
    }

    /// Returns the next event, or `None` at end of input.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Event<'a>>, ParseError> {
        if let Some(ev) = self.queued.pop() {
            return Ok(Some(ev));
        }
        loop {
            if self.finished {
                return Ok(None);
            }
            if self.open.is_empty() {
                self.skip_ws();
            }
            if self.pos >= self.input.len() {
                if !self.open.is_empty() {
                    return self
                        .err(format!("{} unclosed element(s) at end of input", self.open.len()));
                }
                self.finished = true;
                return Ok(None);
            }
            let rest = self.rest();
            if rest.starts_with("<!--") || rest.starts_with("<?") || rest.starts_with("<!DOCTYPE") {
                self.skip_misc()?;
                continue;
            }
            if let Some(cdata) = rest.strip_prefix("<![CDATA[") {
                let Some(i) = cdata.find("]]>") else {
                    return self.err("unterminated CDATA section");
                };
                let text = &cdata[..i];
                self.pos += 9 + i + 3;
                if text.is_empty() || self.open.is_empty() {
                    // CDATA outside the root is ignored like other
                    // top-level character data.
                    continue;
                }
                return Ok(Some(Event::Text(Cow::Borrowed(text))));
            }
            if let Some(after) = rest.strip_prefix("</") {
                let _ = after;
                self.pos += 2;
                let name = self.take_name()?;
                self.skip_ws();
                if !self.rest().starts_with('>') {
                    return self.err("expected '>' after closing tag name");
                }
                self.pos += 1;
                let tag = self.dict.get(name);
                match (self.open.pop(), tag) {
                    (Some(top), Some(t)) if top == t => return Ok(Some(Event::Close(t))),
                    (Some(top), _) => {
                        return self.err(format!(
                            "mismatched closing tag </{}>, expected </{}>",
                            name,
                            self.dict.name(top)
                        ))
                    }
                    (None, _) => {
                        return self.err(format!("closing tag </{name}> with no open element"))
                    }
                }
            }
            if rest.starts_with('<') {
                self.pos += 1;
                let name = self.take_name()?;
                let tag = self.dict.intern(name);
                // Attributes.
                let mut attr_events: Vec<Event<'a>> = Vec::new();
                loop {
                    self.skip_ws();
                    let rest = self.rest();
                    if rest.starts_with("/>") {
                        self.pos += 2;
                        // Self-closing: emit open now, queue attrs + close.
                        self.queued.push(Event::Close(tag));
                        for ev in attr_events.into_iter().rev() {
                            self.queued.push(ev);
                        }
                        return Ok(Some(Event::Open(tag)));
                    }
                    if rest.starts_with('>') {
                        self.pos += 1;
                        self.open.push(tag);
                        for ev in attr_events.into_iter().rev() {
                            self.queued.push(ev);
                        }
                        return Ok(Some(Event::Open(tag)));
                    }
                    if rest.is_empty() {
                        return self.err("unterminated opening tag");
                    }
                    // attribute name="value"
                    let aname = self.take_name()?;
                    self.skip_ws();
                    if !self.rest().starts_with('=') {
                        return self.err(format!("expected '=' after attribute {aname}"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.rest().chars().next() {
                        Some(q @ ('"' | '\'')) => q,
                        _ => return self.err("expected quoted attribute value"),
                    };
                    self.pos += 1;
                    let rest = self.rest();
                    let Some(endq) = rest.find(quote) else {
                        return self.err("unterminated attribute value");
                    };
                    let raw = &rest[..endq];
                    self.pos += endq + 1;
                    if self.config.attributes_as_elements {
                        let attr_tag = self.dict.intern(&format!("@{aname}"));
                        attr_events.push(Event::Open(attr_tag));
                        attr_events.push(Event::Text(unescape(raw)));
                        attr_events.push(Event::Close(attr_tag));
                    }
                }
            }
            // Character data up to the next '<'.
            let end = rest.find('<').unwrap_or(rest.len());
            let raw = &rest[..end];
            self.pos += end;
            if self.open.is_empty() {
                // Text outside the root (prolog whitespace) is ignored.
                continue;
            }
            if self.config.skip_whitespace_text && raw.trim().is_empty() {
                continue;
            }
            return Ok(Some(Event::Text(unescape(raw))));
        }
    }

    /// Collects all remaining events into owned values.
    pub fn collect_events(mut self) -> Result<Vec<Event<'static>>, ParseError> {
        let mut out = Vec::new();
        while let Some(ev) = self.next()? {
            out.push(ev.into_owned());
        }
        Ok(out)
    }
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':' | '@')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(input: &str) -> (Vec<Event<'static>>, TagDict) {
        let mut dict = TagDict::new();
        let events = Parser::new(input, &mut dict).collect_events().expect("parse");
        (events, dict)
    }

    #[test]
    fn simple_document() {
        let (events, dict) = parse("<a><b>hi</b><c/></a>");
        let a = dict.get("a").unwrap();
        let b = dict.get("b").unwrap();
        let c = dict.get("c").unwrap();
        assert_eq!(
            events,
            vec![
                Event::Open(a),
                Event::Open(b),
                Event::Text("hi".into()),
                Event::Close(b),
                Event::Open(c),
                Event::Close(c),
                Event::Close(a),
            ]
        );
    }

    #[test]
    fn attributes_become_elements() {
        let (events, dict) = parse(r#"<a id="7">x</a>"#);
        let a = dict.get("a").unwrap();
        let id = dict.get("@id").unwrap();
        assert_eq!(
            events,
            vec![
                Event::Open(a),
                Event::Open(id),
                Event::Text("7".into()),
                Event::Close(id),
                Event::Text("x".into()),
                Event::Close(a),
            ]
        );
    }

    #[test]
    fn prolog_comments_cdata() {
        let (events, dict) =
            parse("<?xml version=\"1.0\"?><!DOCTYPE a><a><!-- c --><![CDATA[1<2]]></a>");
        let a = dict.get("a").unwrap();
        assert_eq!(events, vec![Event::Open(a), Event::Text("1<2".into()), Event::Close(a)]);
    }

    #[test]
    fn whitespace_text_skipped_by_default() {
        let (events, _) = parse("<a>\n  <b>x</b>\n</a>");
        assert_eq!(events.iter().filter(|e| matches!(e, Event::Text(_))).count(), 1);
    }

    #[test]
    fn whitespace_text_kept_when_configured() {
        let mut dict = TagDict::new();
        let cfg = ParserConfig { skip_whitespace_text: false, ..Default::default() };
        let events =
            Parser::with_config("<a> <b>x</b></a>", &mut dict, cfg).collect_events().unwrap();
        assert_eq!(events.iter().filter(|e| matches!(e, Event::Text(_))).count(), 2);
    }

    #[test]
    fn entities_resolved() {
        let (events, _) = parse("<a>x &amp; y &lt; z</a>");
        assert!(matches!(&events[1], Event::Text(t) if t == "x & y < z"));
    }

    #[test]
    fn mismatched_close_is_error() {
        let mut dict = TagDict::new();
        let err = Parser::new("<a><b></a></b>", &mut dict).collect_events().unwrap_err();
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn unclosed_element_is_error() {
        let mut dict = TagDict::new();
        let err = Parser::new("<a><b>", &mut dict).collect_events().unwrap_err();
        assert!(err.message.contains("unclosed"));
    }

    #[test]
    fn stray_close_is_error() {
        let mut dict = TagDict::new();
        let err = Parser::new("</a>", &mut dict).collect_events().unwrap_err();
        assert!(err.message.contains("no open element"));
    }

    #[test]
    fn depth_tracking() {
        let mut dict = TagDict::new();
        let mut p = Parser::new("<a><b></b></a>", &mut dict);
        assert_eq!(p.depth(), 0);
        p.next().unwrap(); // <a>
        assert_eq!(p.depth(), 1);
        p.next().unwrap(); // <b>
        assert_eq!(p.depth(), 2);
        p.next().unwrap(); // </b>
        assert_eq!(p.depth(), 1);
    }
}
