//! Document statistics — the characteristics the paper reports in Table 2
//! (size, text size, maximum/average depth, #distinct tags, #text nodes,
//! #elements).

use crate::dict::TagId;
use crate::event::Event;
use crate::tree::Document;
use std::collections::HashSet;

/// Table-2 style statistics for a document.
#[derive(Debug, Clone, PartialEq)]
pub struct DocStats {
    /// Textual serialization size in bytes.
    pub size: usize,
    /// Total bytes of text content.
    pub text_size: usize,
    /// Maximum element depth (root = 1).
    pub max_depth: u32,
    /// Average *element* depth.
    pub avg_depth: f64,
    /// Number of distinct element tags.
    pub distinct_tags: usize,
    /// Number of text nodes.
    pub text_nodes: usize,
    /// Number of element nodes.
    pub elements: usize,
}

impl DocStats {
    /// Computes statistics for a materialized document.
    pub fn of(doc: &Document) -> DocStats {
        let mut c = StatsCollector::new();
        doc.emit(doc.root(), &mut |e| c.event(e));
        c.finish(crate::writer::textual_len(doc, doc.root()))
    }

    /// Renders one row of Table 2.
    pub fn row(&self, name: &str) -> String {
        format!(
            "{:<10} size={:>9}B text={:>9}B maxDepth={:>2} avgDepth={:>4.1} tags={:>3} textNodes={:>8} elements={:>8}",
            name, self.size, self.text_size, self.max_depth, self.avg_depth,
            self.distinct_tags, self.text_nodes, self.elements
        )
    }
}

/// Streaming statistics collector (works on event streams too).
pub struct StatsCollector {
    depth: u32,
    max_depth: u32,
    depth_sum: u64,
    elements: usize,
    text_nodes: usize,
    text_size: usize,
    tags: HashSet<TagId>,
}

impl Default for StatsCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl StatsCollector {
    /// New empty collector.
    pub fn new() -> Self {
        StatsCollector {
            depth: 0,
            max_depth: 0,
            depth_sum: 0,
            elements: 0,
            text_nodes: 0,
            text_size: 0,
            tags: HashSet::new(),
        }
    }

    /// Consumes one event.
    pub fn event(&mut self, ev: &Event<'_>) {
        match ev {
            Event::Open(tag) => {
                self.depth += 1;
                self.max_depth = self.max_depth.max(self.depth);
                self.depth_sum += u64::from(self.depth);
                self.elements += 1;
                self.tags.insert(*tag);
            }
            Event::Text(t) => {
                self.text_nodes += 1;
                self.text_size += t.len();
            }
            Event::Close(_) => {
                self.depth -= 1;
            }
        }
    }

    /// Finalizes the statistics; `size` is the serialized byte size.
    pub fn finish(self, size: usize) -> DocStats {
        DocStats {
            size,
            text_size: self.text_size,
            max_depth: self.max_depth,
            avg_depth: if self.elements == 0 {
                0.0
            } else {
                self.depth_sum as f64 / self.elements as f64
            },
            distinct_tags: self.tags.len(),
            text_nodes: self.text_nodes,
            elements: self.elements,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_small_document() {
        let doc = Document::parse("<a><b>hi</b><b>yo</b><c><d>deep</d></c></a>").unwrap();
        let s = DocStats::of(&doc);
        assert_eq!(s.elements, 5);
        assert_eq!(s.text_nodes, 3);
        assert_eq!(s.text_size, 8);
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.distinct_tags, 4);
        // depths: a=1, b=2, b=2, c=2, d=3 → avg 2.0
        assert!((s.avg_depth - 2.0).abs() < 1e-9);
    }

    #[test]
    fn size_is_serialized_length() {
        let xml = "<a><b>hi</b></a>";
        let doc = Document::parse(xml).unwrap();
        assert_eq!(DocStats::of(&doc).size, xml.len());
    }

    #[test]
    fn empty_collector_finishes() {
        let s = StatsCollector::new().finish(0);
        assert_eq!(s.elements, 0);
        assert_eq!(s.avg_depth, 0.0);
    }

    #[test]
    fn row_formats() {
        let doc = Document::parse("<a>x</a>").unwrap();
        let row = DocStats::of(&doc).row("tiny");
        assert!(row.starts_with("tiny"));
        assert!(row.contains("elements="));
    }
}
