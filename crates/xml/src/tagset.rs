//! Compact sets of [`TagId`]s.
//!
//! The skip index stores, for every element `e`, the set of tags appearing
//! in `e`'s subtree (`DescTag_e`, §4.1). The evaluator compares the
//! `RemainingLabels` of every active token against this set (§4.2).

use crate::dict::TagId;

/// A fixed-capacity bitset over tag ids.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct TagSet {
    words: Vec<u64>,
}

impl TagSet {
    /// Empty set able to hold ids `< capacity`.
    pub fn with_capacity(capacity: usize) -> TagSet {
        TagSet { words: vec![0; capacity.div_ceil(64)] }
    }

    /// Empty set (grows on insert).
    pub fn new() -> TagSet {
        TagSet::default()
    }

    /// Inserts a tag, growing if needed. Returns true if newly inserted.
    pub fn insert(&mut self, tag: TagId) -> bool {
        let (w, b) = (tag.index() / 64, tag.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Empties the set, keeping its allocation (for reuse in decode
    /// loops: one `TagSet` can serve every element record of a session).
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, tag: TagId) -> bool {
        let (w, b) = (tag.index() / 64, tag.index() % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// True when every id in `tags` is present.
    #[inline]
    pub fn contains_all(&self, tags: &[TagId]) -> bool {
        tags.iter().all(|&t| self.contains(t))
    }

    /// True when `other ⊆ self`.
    pub fn is_superset(&self, other: &TagSet) -> bool {
        for (i, &w) in other.words.iter().enumerate() {
            let own = self.words.get(i).copied().unwrap_or(0);
            if w & !own != 0 {
                return false;
            }
        }
        true
    }

    /// Unions `other` into `self`.
    pub fn union_with(&mut self, other: &TagSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (i, &w) in other.words.iter().enumerate() {
            self.words[i] |= w;
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no tag is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = TagId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1u64 << b) != 0 {
                    Some(TagId((wi * 64 + b) as u32))
                } else {
                    None
                }
            })
        })
    }

    /// Members as a sorted vector.
    pub fn to_vec(&self) -> Vec<TagId> {
        self.iter().collect()
    }
}

impl FromIterator<TagId> for TagSet {
    fn from_iter<I: IntoIterator<Item = TagId>>(iter: I) -> Self {
        let mut s = TagSet::new();
        for t in iter {
            s.insert(t);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains() {
        let mut s = TagSet::new();
        assert!(s.insert(TagId(3)));
        assert!(!s.insert(TagId(3)));
        assert!(s.insert(TagId(100)));
        assert!(s.contains(TagId(3)));
        assert!(s.contains(TagId(100)));
        assert!(!s.contains(TagId(4)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn superset_and_union() {
        let a: TagSet = [TagId(1), TagId(2), TagId(70)].into_iter().collect();
        let b: TagSet = [TagId(2)].into_iter().collect();
        assert!(a.is_superset(&b));
        assert!(!b.is_superset(&a));
        let mut c = b.clone();
        c.union_with(&a);
        assert!(c.is_superset(&a));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn contains_all_matches_remaining_labels_usage() {
        let s: TagSet = [TagId(1), TagId(5)].into_iter().collect();
        assert!(s.contains_all(&[TagId(1)]));
        assert!(s.contains_all(&[]));
        assert!(!s.contains_all(&[TagId(1), TagId(9)]));
    }

    #[test]
    fn iter_sorted() {
        let s: TagSet = [TagId(9), TagId(1), TagId(64)].into_iter().collect();
        assert_eq!(s.to_vec(), vec![TagId(1), TagId(9), TagId(64)]);
    }

    #[test]
    fn empty_set() {
        let s = TagSet::with_capacity(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.is_superset(&TagSet::new()));
    }
}
