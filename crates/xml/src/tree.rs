//! Arena-based document tree.
//!
//! The tree is used wherever a materialized document is needed: data
//! generation, server-side skip-index encoding, and the non-streaming
//! reference oracle. The SOE itself never materializes documents (that is
//! the point of the paper); the streaming evaluator consumes [`Event`]s.

use crate::dict::{TagDict, TagId};
use crate::event::Event;
use crate::parser::{ParseError, Parser};
use std::borrow::Cow;

/// Index of a node in the document arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A document node: an element with children, or a text leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Node {
    /// Element node.
    Element {
        /// Interned tag.
        tag: TagId,
        /// Children in document order.
        children: Vec<NodeId>,
    },
    /// Text node.
    Text(String),
}

/// An XML document: tag dictionary + node arena + root element.
#[derive(Clone, Debug)]
pub struct Document {
    /// The shared tag dictionary.
    pub dict: TagDict,
    nodes: Vec<Node>,
    root: NodeId,
}

impl Document {
    /// Parses a document from XML text.
    pub fn parse(input: &str) -> Result<Document, ParseError> {
        let mut dict = TagDict::new();
        let mut parser = Parser::new(input, &mut dict);
        let mut nodes: Vec<Node> = Vec::new();
        let mut stack: Vec<NodeId> = Vec::new();
        let mut root: Option<NodeId> = None;
        while let Some(ev) = parser.next()? {
            match ev {
                Event::Open(tag) => {
                    let id = NodeId(nodes.len() as u32);
                    nodes.push(Node::Element { tag, children: Vec::new() });
                    if let Some(&parent) = stack.last() {
                        if let Node::Element { children, .. } = &mut nodes[parent.index()] {
                            children.push(id);
                        }
                    } else if root.is_none() {
                        root = Some(id);
                    } else {
                        return Err(ParseError {
                            offset: 0,
                            message: "multiple root elements".into(),
                        });
                    }
                    stack.push(id);
                }
                Event::Text(text) => {
                    let Some(&parent) = stack.last() else {
                        return Err(ParseError {
                            offset: 0,
                            message: "text content outside the root element".into(),
                        });
                    };
                    let id = NodeId(nodes.len() as u32);
                    nodes.push(Node::Text(text.into_owned()));
                    if let Node::Element { children, .. } = &mut nodes[parent.index()] {
                        children.push(id);
                    }
                }
                Event::Close(_) => {
                    stack.pop();
                }
            }
        }
        match root {
            Some(root) => Ok(Document { dict, nodes, root }),
            None => Err(ParseError { offset: 0, message: "empty document".into() }),
        }
    }

    /// Builds a document programmatically with a [`DocBuilder`].
    pub fn build(root_tag: &str, f: impl FnOnce(&mut DocBuilder<'_>)) -> Document {
        let mut dict = TagDict::new();
        let root_tag = dict.intern(root_tag);
        let mut nodes = vec![Node::Element { tag: root_tag, children: Vec::new() }];
        let root = NodeId(0);
        {
            let mut b = DocBuilder { dict: &mut dict, nodes: &mut nodes, stack: vec![root] };
            f(&mut b);
            assert_eq!(b.stack.len(), 1, "DocBuilder: unclosed elements");
        }
        Document { dict, nodes, root }
    }

    /// The root element.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Immutable node access.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes in the arena (elements + text nodes).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Tag of an element node. Panics on a text node.
    pub fn tag(&self, id: NodeId) -> TagId {
        match self.node(id) {
            Node::Element { tag, .. } => *tag,
            Node::Text(_) => panic!("tag() called on a text node"),
        }
    }

    /// Children of an element node (empty for text nodes).
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        match self.node(id) {
            Node::Element { children, .. } => children,
            Node::Text(_) => &[],
        }
    }

    /// Concatenated *immediate* text content of an element — the value the
    /// paper's predicates compare against (e.g. `[Cholesterol > 250]`).
    pub fn immediate_text(&self, id: NodeId) -> String {
        let mut out = String::new();
        for &c in self.children(id) {
            if let Node::Text(t) = self.node(c) {
                out.push_str(t);
            }
        }
        out
    }

    /// Streams the subtree rooted at `id` into an event sink.
    pub fn emit(&self, id: NodeId, sink: &mut impl FnMut(&Event<'_>)) {
        match self.node(id) {
            Node::Text(t) => sink(&Event::Text(Cow::Borrowed(t))),
            Node::Element { tag, children } => {
                sink(&Event::Open(*tag));
                for &c in children {
                    self.emit(c, sink);
                }
                sink(&Event::Close(*tag));
            }
        }
    }

    /// All events of the document in order, owned.
    pub fn events(&self) -> Vec<Event<'static>> {
        let mut out = Vec::with_capacity(self.nodes.len() * 2);
        self.emit(self.root, &mut |e| out.push(e.clone().into_owned()));
        out
    }

    /// Document-order iteration of `(NodeId, depth)` for all nodes, root at
    /// depth 1 (the paper counts the root at depth 1 — cf. Figure 3).
    pub fn preorder(&self) -> Vec<(NodeId, u32)> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(self.root, 1u32)];
        while let Some((id, d)) = stack.pop() {
            out.push((id, d));
            let children = self.children(id);
            for &c in children.iter().rev() {
                stack.push((c, d + 1));
            }
        }
        out
    }
}

/// Incremental builder for [`Document`]s (used by the data generators).
pub struct DocBuilder<'a> {
    dict: &'a mut TagDict,
    nodes: &'a mut Vec<Node>,
    stack: Vec<NodeId>,
}

impl<'a> DocBuilder<'a> {
    /// Opens a child element; must be paired with [`DocBuilder::close`].
    pub fn open(&mut self, tag: &str) -> &mut Self {
        let tag = self.dict.intern(tag);
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Element { tag, children: Vec::new() });
        let parent = *self.stack.last().expect("builder stack empty");
        if let Node::Element { children, .. } = &mut self.nodes[parent.index()] {
            children.push(id);
        }
        self.stack.push(id);
        self
    }

    /// Closes the most recently opened element.
    pub fn close(&mut self) -> &mut Self {
        assert!(self.stack.len() > 1, "DocBuilder: close() would pop the root");
        self.stack.pop();
        self
    }

    /// Appends a text node to the current element.
    pub fn text(&mut self, content: impl Into<String>) -> &mut Self {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Text(content.into()));
        let parent = *self.stack.last().expect("builder stack empty");
        if let Node::Element { children, .. } = &mut self.nodes[parent.index()] {
            children.push(id);
        }
        self
    }

    /// Convenience: `<tag>text</tag>`.
    pub fn leaf(&mut self, tag: &str, content: impl Into<String>) -> &mut Self {
        self.open(tag).text(content).close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_navigate() {
        let doc = Document::parse("<a><b>1</b><b>2</b><c/></a>").unwrap();
        let root = doc.root();
        assert_eq!(doc.dict.name(doc.tag(root)), "a");
        assert_eq!(doc.children(root).len(), 3);
        let b0 = doc.children(root)[0];
        assert_eq!(doc.immediate_text(b0), "1");
        assert_eq!(doc.immediate_text(root), "");
    }

    #[test]
    fn builder_matches_parse() {
        let built = Document::build("a", |b| {
            b.leaf("b", "1");
            b.leaf("b", "2");
            b.open("c").close();
        });
        let parsed = Document::parse("<a><b>1</b><b>2</b><c/></a>").unwrap();
        assert_eq!(built.events(), parsed.events());
    }

    #[test]
    fn events_roundtrip_through_parse() {
        let xml = "<r><x>one</x><y><z>two</z></y></r>";
        let doc = Document::parse(xml).unwrap();
        let events = doc.events();
        assert_eq!(events.len(), 2 * 4 + 2); // 4 elements, 2 text nodes
    }

    #[test]
    fn preorder_depths() {
        let doc = Document::parse("<a><b><c>t</c></b></a>").unwrap();
        let order: Vec<u32> = doc.preorder().iter().map(|&(_, d)| d).collect();
        assert_eq!(order, vec![1, 2, 3, 4]); // a b c #text
    }

    #[test]
    fn multiple_roots_rejected() {
        assert!(Document::parse("<a/><b/>").is_err());
    }

    #[test]
    fn empty_document_rejected() {
        assert!(Document::parse("  ").is_err());
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn builder_asserts_balance() {
        let _ = Document::build("a", |b| {
            b.open("b");
        });
    }
}
