//! Serialization of events and trees back to XML text.

use crate::dict::{TagDict, TagId};
use crate::escape::escape;
use crate::event::Event;
use crate::tree::{Document, Node, NodeId};

/// Streaming serializer: feed it events, read out XML text.
pub struct XmlWriter<'d> {
    dict: &'d TagDict,
    out: String,
    /// Open tags whose `>` has been written.
    depth: usize,
    pretty: bool,
    /// Whether the current element has child content yet (pretty mode).
    had_children: Vec<bool>,
}

impl<'d> XmlWriter<'d> {
    /// Compact writer (no insignificant whitespace).
    pub fn new(dict: &'d TagDict) -> Self {
        XmlWriter { dict, out: String::new(), depth: 0, pretty: false, had_children: Vec::new() }
    }

    /// Pretty-printing writer (newline + two-space indent per level).
    pub fn pretty(dict: &'d TagDict) -> Self {
        XmlWriter { dict, out: String::new(), depth: 0, pretty: true, had_children: Vec::new() }
    }

    /// Handles one event.
    pub fn event(&mut self, ev: &Event<'_>) {
        match ev {
            Event::Open(tag) => {
                if self.pretty && self.depth > 0 {
                    self.newline();
                }
                if let Some(h) = self.had_children.last_mut() {
                    *h = true;
                }
                self.out.push('<');
                self.out.push_str(self.dict.name(*tag));
                self.out.push('>');
                self.depth += 1;
                self.had_children.push(false);
            }
            Event::Text(text) => {
                if let Some(h) = self.had_children.last_mut() {
                    *h = true;
                }
                self.out.push_str(&escape(text));
            }
            Event::Close(tag) => {
                self.depth -= 1;
                let had = self.had_children.pop().unwrap_or(false);
                if self.pretty && had && self.ends_with_closing() {
                    self.newline();
                }
                self.out.push_str("</");
                self.out.push_str(self.dict.name(*tag));
                self.out.push('>');
            }
        }
    }

    fn ends_with_closing(&self) -> bool {
        self.out.ends_with('>')
    }

    fn newline(&mut self) {
        self.out.push('\n');
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
    }

    /// Consumes the writer, returning the XML text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Serializes a whole document compactly.
pub fn document_to_string(doc: &Document) -> String {
    let mut w = XmlWriter::new(&doc.dict);
    doc.emit(doc.root(), &mut |e| w.event(e));
    w.finish()
}

/// Serializes the subtree rooted at `id`.
pub fn subtree_to_string(doc: &Document, id: NodeId) -> String {
    let mut w = XmlWriter::new(&doc.dict);
    doc.emit(id, &mut |e| w.event(e));
    w.finish()
}

/// Byte length of the *textual* XML serialization of a node, used by the
/// `NC` (non-compressed) encoding baseline of Figure 8.
pub fn textual_len(doc: &Document, id: NodeId) -> usize {
    match doc.node(id) {
        Node::Text(t) => escape(t).len(),
        Node::Element { tag, children } => {
            let name = doc.dict.name(*tag).len();
            // <tag> + </tag>
            let mut n = name * 2 + 5;
            for &c in children {
                n += textual_len(doc, c);
            }
            n
        }
    }
}

/// Serializes an owned event sequence (utility for tests and examples).
pub fn events_to_string(dict: &TagDict, events: &[Event<'_>]) -> String {
    let mut w = XmlWriter::new(dict);
    for e in events {
        w.event(e);
    }
    w.finish()
}

/// A dummy tag name used when the structural rule replaces denied ancestor
/// names (§2: "names of denied elements in this path can be replaced by a
/// dummy value").
pub const DUMMY_TAG_NAME: &str = "_";

/// Ensures `dict` contains the dummy tag, returning its id.
pub fn dummy_tag(dict: &mut TagDict) -> TagId {
    dict.intern(DUMMY_TAG_NAME)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let xml = "<a><b>x &amp; y</b><c></c></a>";
        let doc = Document::parse(xml).unwrap();
        assert_eq!(document_to_string(&doc), xml);
    }

    #[test]
    fn subtree_serialization() {
        let doc = Document::parse("<a><b>x</b><c>y</c></a>").unwrap();
        let b = doc.children(doc.root())[0];
        assert_eq!(subtree_to_string(&doc, b), "<b>x</b>");
    }

    #[test]
    fn textual_len_matches_serialization() {
        let doc = Document::parse("<a><b>x &amp; y</b><c></c></a>").unwrap();
        assert_eq!(textual_len(&doc, doc.root()), document_to_string(&doc).len());
    }

    #[test]
    fn pretty_output_indents() {
        let doc = Document::parse("<a><b>x</b></a>").unwrap();
        let mut w = XmlWriter::pretty(&doc.dict);
        doc.emit(doc.root(), &mut |e| w.event(e));
        let s = w.finish();
        assert!(s.contains("\n  <b>"));
    }

    #[test]
    fn parse_serialize_parse_is_identity() {
        let xml = "<r><x a=\"1\">one</x><y><z>two</z></y></r>";
        let d1 = Document::parse(xml).unwrap();
        let s1 = document_to_string(&d1);
        let d2 = Document::parse(&s1).unwrap();
        assert_eq!(d1.events(), d2.events());
    }
}
