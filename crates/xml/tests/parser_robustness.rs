//! Parser robustness and serialization round-trips.

use proptest::prelude::*;
use xsac_xml::writer::document_to_string;
use xsac_xml::{Document, TagDict};

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..Default::default() })]

    /// Arbitrary input never panics the parser: a Document or a ParseError.
    #[test]
    fn arbitrary_input_never_panics(input in ".{0,256}") {
        let _ = Document::parse(&input);
    }

    /// Tag-soup-shaped input never panics either.
    #[test]
    fn tag_soup_never_panics(parts in prop::collection::vec(
        prop_oneof![
            Just("<a>".to_string()),
            Just("</a>".to_string()),
            Just("<b x='1'>".to_string()),
            Just("</b>".to_string()),
            Just("<".to_string()),
            Just(">".to_string()),
            Just("&amp;".to_string()),
            Just("&#xZZ;".to_string()),
            Just("text".to_string()),
            Just("<!--".to_string()),
            Just("-->".to_string()),
            Just("<![CDATA[".to_string()),
            Just("]]>".to_string()),
        ],
        0..24,
    )) {
        let _ = Document::parse(&parts.concat());
    }

    /// parse ∘ serialize is the identity on event streams for generated
    /// documents.
    #[test]
    fn serialize_parse_roundtrip(
        names in prop::collection::vec("[a-z][a-z0-9]{0,6}", 1..8),
        texts in prop::collection::vec("[ -~&&[^<&]]{0,16}", 1..8),
    ) {
        // Build a nested document from the fragments.
        let mut xml = String::new();
        for n in &names {
            xml.push_str(&format!("<{n}>"));
        }
        for t in &texts {
            if !t.trim().is_empty() {
                xml.push_str(&xsac_xml::escape::escape(t));
            }
        }
        for n in names.iter().rev() {
            xml.push_str(&format!("</{n}>"));
        }
        let d1 = Document::parse(&xml).unwrap();
        let s1 = document_to_string(&d1);
        let d2 = Document::parse(&s1).unwrap();
        prop_assert_eq!(d1.events(), d2.events());
        prop_assert_eq!(s1.clone(), document_to_string(&d2));
    }

    /// escape/unescape are inverses on arbitrary content.
    #[test]
    fn escape_roundtrip(s in ".{0,128}") {
        let escaped = xsac_xml::escape::escape(&s);
        prop_assert_eq!(xsac_xml::escape::unescape(&escaped).into_owned(), s);
    }
}

#[test]
fn dictionaries_stay_consistent_across_parses() {
    // Two parses of the same document give identical dictionaries.
    let xml = "<a><b id=\"1\">x</b><c/></a>";
    let d1 = Document::parse(xml).unwrap();
    let d2 = Document::parse(xml).unwrap();
    let n1: Vec<&str> = d1.dict.iter().map(|(_, n)| n).collect();
    let n2: Vec<&str> = d2.dict.iter().map(|(_, n)| n).collect();
    assert_eq!(n1, n2);
    assert_eq!(d1.dict.get("@id"), d2.dict.get("@id"));
    let _ = TagDict::new();
}
