//! Abstract syntax for XP{[],*,//}.

use std::fmt;

/// Step axis: `/` (child) or `//` (descendant-or-self composed with child,
/// i.e. the usual abbreviated descendant axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `/name`
    Child,
    /// `//name`
    Descendant,
}

/// Node test of a step.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum NameTest {
    /// Named element test.
    Name(String),
    /// Wildcard `*`.
    Wildcard,
}

impl NameTest {
    /// True when the test accepts `name`.
    pub fn matches(&self, name: &str) -> bool {
        match self {
            NameTest::Name(n) => n == name,
            NameTest::Wildcard => true,
        }
    }
}

/// Comparison operator inside a predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates `left op right`, comparing numerically when both sides
    /// parse as numbers, lexicographically otherwise (the paper's rules
    /// compare both numbers, e.g. `[Cholesterol > 250]`, and strings, e.g.
    /// `[Type = G3]`).
    pub fn eval(self, left: &str, right: &str) -> bool {
        let l = left.trim();
        let r = right.trim();
        if let (Ok(lf), Ok(rf)) = (l.parse::<f64>(), r.parse::<f64>()) {
            match self {
                CmpOp::Eq => lf == rf,
                CmpOp::Ne => lf != rf,
                CmpOp::Lt => lf < rf,
                CmpOp::Le => lf <= rf,
                CmpOp::Gt => lf > rf,
                CmpOp::Ge => lf >= rf,
            }
        } else {
            match self {
                CmpOp::Eq => l == r,
                CmpOp::Ne => l != r,
                CmpOp::Lt => l < r,
                CmpOp::Le => l <= r,
                CmpOp::Gt => l > r,
                CmpOp::Ge => l >= r,
            }
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Right-hand side of a predicate comparison.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Value {
    /// A literal (quoted or bare word / number).
    Literal(String),
    /// The `USER` variable, bound to the subject at evaluation time
    /// (e.g. `//MedActs[//RPhys = USER]` — Figure 1).
    User,
}

impl Value {
    /// Resolves against the current subject.
    pub fn resolve<'a>(&'a self, user: &'a str) -> &'a str {
        match self {
            Value::Literal(s) => s,
            Value::User => user,
        }
    }
}

/// A predicate `[path]` or `[path op value]`.
///
/// The path is *relative* to the anchor element; an empty path denotes the
/// anchor itself (`[. = v]`). Predicate paths are linear, matching the ARA
/// structure of §3.1 ("an ARA includes one navigational path and optionally
/// one or several predicate paths").
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// Relative steps from the anchor element (possibly empty = self).
    pub steps: Vec<Step>,
    /// Optional comparison on the matched element's immediate text.
    pub comparison: Option<(CmpOp, Value)>,
}

/// One location step.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Step {
    /// Axis connecting this step to the previous one.
    pub axis: Axis,
    /// Node test.
    pub test: NameTest,
    /// Predicates attached to this step.
    pub predicates: Vec<Predicate>,
}

/// An absolute XP{[],*,//} path.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Path {
    /// Steps from the document root.
    pub steps: Vec<Step>,
}

impl Path {
    /// Total number of predicates anywhere in the path.
    pub fn predicate_count(&self) -> usize {
        self.steps.iter().map(|s| s.predicates.len()).sum()
    }

    /// True when any step uses the descendant axis (including inside
    /// predicates) — the condition that makes rule instances multiply
    /// (§3.1, "rule instances materialization").
    pub fn has_descendant_axis(&self) -> bool {
        self.steps.iter().any(|s| {
            s.axis == Axis::Descendant
                || s.predicates.iter().any(|p| p.steps.iter().any(|ps| ps.axis == Axis::Descendant))
        })
    }
}

impl fmt::Display for NameTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameTest::Name(n) => f.write_str(n),
            NameTest::Wildcard => f.write_str("*"),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        if self.steps.is_empty() {
            f.write_str(".")?;
        } else {
            for (i, s) in self.steps.iter().enumerate() {
                let sep = match s.axis {
                    Axis::Child if i == 0 => "",
                    Axis::Child => "/",
                    Axis::Descendant => "//",
                };
                write!(f, "{sep}{}", s.test)?;
                for p in &s.predicates {
                    write!(f, "{p}")?;
                }
            }
        }
        if let Some((op, v)) = &self.comparison {
            match v {
                Value::Literal(s) => write!(f, " {op} {s}")?,
                Value::User => write!(f, " {op} USER")?,
            }
        }
        f.write_str("]")
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.steps {
            let sep = match s.axis {
                Axis::Child => "/",
                Axis::Descendant => "//",
            };
            write!(f, "{sep}{}", s.test)?;
            for p in &s.predicates {
                write!(f, "{p}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_numeric_vs_string() {
        assert!(CmpOp::Gt.eval("260", "250"));
        assert!(!CmpOp::Gt.eval("9", "250")); // numeric, not lexicographic
        assert!(CmpOp::Eq.eval("G3", "G3"));
        assert!(CmpOp::Ne.eval("G3", "G4"));
        assert!(CmpOp::Lt.eval("abc", "abd")); // lexicographic fallback
        assert!(CmpOp::Le.eval("5", "5.0")); // numeric equality
    }

    #[test]
    fn cmp_trims_whitespace() {
        assert!(CmpOp::Eq.eval(" 250 ", "250"));
    }

    #[test]
    fn value_resolution() {
        assert_eq!(Value::User.resolve("doc1"), "doc1");
        assert_eq!(Value::Literal("G3".into()).resolve("doc1"), "G3");
    }

    #[test]
    fn nametest_matching() {
        assert!(NameTest::Wildcard.matches("anything"));
        assert!(NameTest::Name("a".into()).matches("a"));
        assert!(!NameTest::Name("a".into()).matches("b"));
    }
}
