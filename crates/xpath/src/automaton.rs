//! Access Rule Automata (ARA), §3.1.
//!
//! Each access rule (and query) is compiled into a non-deterministic finite
//! automaton with **one navigational path** and **zero or more predicate
//! paths**. Directed edges are triggered by `open` events whose tag matches
//! the edge label (an element name or `*`); the descendant axis is modelled
//! by a self-transition labelled `*` on the source state.
//!
//! The automaton also precomputes the `RemainingLabels` metadata of §4.2:
//! for every state, the set of element tags that *must* still be seen for a
//! token in that state to reach its final state. The skip index compares
//! this set against the descendant-tag set of the current element to kill
//! tokens early.

use crate::ast::{Axis, CmpOp, Path, Value};
use xsac_xml::{TagDict, TagId};

/// Automaton state index.
pub type StateId = u32;

/// Transition label.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Label {
    /// Matches a specific tag.
    Tag(TagId),
    /// Matches any tag (`*`).
    Wildcard,
}

impl Label {
    /// True when an `open(tag)` event triggers this label.
    #[inline]
    pub fn matches(self, tag: TagId) -> bool {
        match self {
            Label::Tag(t) => t == tag,
            Label::Wildcard => true,
        }
    }
}

/// Which path of the ARA a state belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StateKind {
    /// Navigational path.
    Nav,
    /// Predicate path `index`.
    Pred(u32),
}

/// One ARA state.
#[derive(Clone, Debug)]
pub struct State {
    /// Outgoing chain transition (linear paths have at most one).
    pub transition: Option<(Label, StateId)>,
    /// Self-transition labelled `*` (descendant axis pending).
    pub self_loop: bool,
    /// Path membership.
    pub kind: StateKind,
    /// Final state of its path.
    pub is_final: bool,
    /// Tags that must still be matched on the way to this path's final
    /// state (wildcard steps contribute nothing). Sorted, deduplicated.
    pub remaining_labels: Vec<TagId>,
    /// Predicate paths anchored here: when a navigational token *arrives*
    /// in this state, it spawns one predicate token per entry.
    pub pred_anchors: Vec<u32>,
    /// Nav states only: tags needed for a *fresh rule instance* to become
    /// active strictly below an element where a token rests in this state —
    /// remaining navigational labels plus the labels of all predicate paths
    /// anchored at or ahead of this state. Used by `DecideSubtree` (§3.3).
    pub activation_labels: Vec<TagId>,
    /// Nav states only: predicate indexes whose anchor is at or ahead of
    /// this state (not yet bound by a token resting here).
    pub preds_ahead: Vec<u32>,
}

/// Description of one predicate path.
#[derive(Clone, Debug)]
pub struct PredPathInfo {
    /// Index within [`Automaton::preds`].
    pub index: u32,
    /// Navigational state the predicate is anchored at (the state *reached*
    /// by matching the step carrying the predicate).
    pub anchor_state: StateId,
    /// First state of the predicate path; a freshly spawned predicate token
    /// starts here. Equal to [`PredPathInfo::final_state`] for self
    /// predicates (`[. op v]`).
    pub start_state: StateId,
    /// Final state of the predicate path.
    pub final_state: StateId,
    /// Optional comparison on the matched element's immediate text.
    pub comparison: Option<(CmpOp, Value)>,
}

/// A compiled ARA.
#[derive(Clone, Debug)]
pub struct Automaton {
    /// All states (navigational chain first, predicate chains interleaved
    /// after their anchor step).
    pub states: Vec<State>,
    /// Start state (before the document root opens).
    pub start: StateId,
    /// Final state of the navigational path.
    pub nav_final: StateId,
    /// Predicate paths in anchor order.
    pub preds: Vec<PredPathInfo>,
    /// Pretty-printed source path (diagnostics).
    pub source: String,
}

// Compiled automata are shared across session threads by the multi-session
// serving layer (one `Arc`-ed compiled policy per role): they must stay
// `Send + Sync` — no interior mutability, no `Rc` — which this checks at
// compile time.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Automaton>();
    assert_send_sync::<State>();
};

impl Automaton {
    /// Compiles a parsed [`Path`], interning its names into `dict`.
    ///
    /// Tags are interned (not merely looked up) so that rules mentioning
    /// tags absent from a given document still build; their transitions
    /// simply never fire.
    pub fn compile(path: &Path, dict: &mut TagDict) -> Automaton {
        let mut b = Builder { states: Vec::new(), preds: Vec::new() };
        let start = b.push_state(StateKind::Nav);
        let mut cur = start;
        for step in &path.steps {
            if step.axis == Axis::Descendant {
                b.states[cur as usize].self_loop = true;
            }
            let next = b.push_state(StateKind::Nav);
            let label = label_of(&step.test, dict);
            b.states[cur as usize].transition = Some((label, next));
            for pred in &step.predicates {
                let idx = b.preds.len() as u32;
                b.states[next as usize].pred_anchors.push(idx);
                let (p_start, p_final) = b.build_pred_chain(idx, pred, dict);
                b.preds.push(PredPathInfo {
                    index: idx,
                    anchor_state: next,
                    start_state: p_start,
                    final_state: p_final,
                    comparison: pred.comparison.clone(),
                });
            }
            cur = next;
        }
        b.states[cur as usize].is_final = true;
        let mut automaton = Automaton {
            states: b.states,
            start,
            nav_final: cur,
            preds: b.preds,
            source: path.to_string(),
        };
        automaton.compute_remaining_labels();
        automaton.compute_activation_metadata();
        automaton
    }

    /// Parses and compiles in one step.
    pub fn parse(expr: &str, dict: &mut TagDict) -> Result<Automaton, crate::parser::XPathError> {
        Ok(Self::compile(&crate::parser::parse_path(expr)?, dict))
    }

    /// State accessor.
    #[inline]
    pub fn state(&self, id: StateId) -> &State {
        &self.states[id as usize]
    }

    /// True when the rule carries at least one predicate.
    pub fn has_predicates(&self) -> bool {
        !self.preds.is_empty()
    }

    /// Walks each linear chain backwards accumulating required tags.
    fn compute_remaining_labels(&mut self) {
        // Chains are identified by following `transition` from every chain
        // start (nav start + each predicate start). Compute by repeated
        // backward accumulation: remaining(s) = remaining(next) ∪ {label}.
        let order: Vec<StateId> = (0..self.states.len() as StateId).rev().collect();
        // States are created in chain order (source before target), so a
        // single reverse pass suffices.
        for id in order {
            let Some((label, next)) = self.states[id as usize].transition else {
                continue;
            };
            let mut labels = self.states[next as usize].remaining_labels.clone();
            if let Label::Tag(t) = label {
                labels.push(t);
            }
            labels.sort_unstable();
            labels.dedup();
            self.states[id as usize].remaining_labels = labels;
        }
    }

    /// Computes `activation_labels` and `preds_ahead` for nav states.
    fn compute_activation_metadata(&mut self) {
        let nav_states: Vec<StateId> = (0..self.states.len() as StateId)
            .filter(|&s| self.states[s as usize].kind == StateKind::Nav)
            .collect();
        for &s in &nav_states {
            let mut labels = self.states[s as usize].remaining_labels.clone();
            let mut ahead = Vec::new();
            for p in &self.preds {
                // Anchored strictly ahead: the anchor state has not been
                // crossed by a token currently resting in `s`.
                if p.anchor_state > s {
                    ahead.push(p.index);
                    labels.extend(
                        self.states[p.start_state as usize].remaining_labels.iter().copied(),
                    );
                }
            }
            labels.sort_unstable();
            labels.dedup();
            self.states[s as usize].activation_labels = labels;
            self.states[s as usize].preds_ahead = ahead;
        }
    }
}

struct Builder {
    states: Vec<State>,
    preds: Vec<PredPathInfo>,
}

impl Builder {
    fn push_state(&mut self, kind: StateKind) -> StateId {
        let id = self.states.len() as StateId;
        self.states.push(State {
            transition: None,
            self_loop: false,
            kind,
            is_final: false,
            remaining_labels: Vec::new(),
            pred_anchors: Vec::new(),
            activation_labels: Vec::new(),
            preds_ahead: Vec::new(),
        });
        id
    }

    /// Builds the linear chain of a predicate path; returns (start, final).
    fn build_pred_chain(
        &mut self,
        idx: u32,
        pred: &crate::ast::Predicate,
        dict: &mut TagDict,
    ) -> (StateId, StateId) {
        let start = self.push_state(StateKind::Pred(idx));
        let mut cur = start;
        for step in &pred.steps {
            if step.axis == Axis::Descendant {
                self.states[cur as usize].self_loop = true;
            }
            let next = self.push_state(StateKind::Pred(idx));
            let label = label_of(&step.test, dict);
            self.states[cur as usize].transition = Some((label, next));
            cur = next;
        }
        self.states[cur as usize].is_final = true;
        (start, cur)
    }
}

fn label_of(test: &crate::ast::NameTest, dict: &mut TagDict) -> Label {
    match test {
        crate::ast::NameTest::Name(n) => Label::Tag(dict.intern(n)),
        crate::ast::NameTest::Wildcard => Label::Wildcard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_path;

    fn compile(expr: &str) -> (Automaton, TagDict) {
        let mut dict = TagDict::new();
        let a = Automaton::compile(&parse_path(expr).unwrap(), &mut dict);
        (a, dict)
    }

    #[test]
    fn figure3_rule_r_structure() {
        // R: ⊕ //b[c]/d — Figure 3(b) of the paper: navigational states
        // 1-(b)->2-(d)->3 with a self-loop on 1, predicate path 4-(c)->5.
        let (a, dict) = compile("//b[c]/d");
        let b = dict.get("b").unwrap();
        let c = dict.get("c").unwrap();
        let d = dict.get("d").unwrap();

        let s0 = a.state(a.start);
        assert!(s0.self_loop, "descendant axis puts a *-self-loop on the start state");
        let (l0, s1_id) = s0.transition.unwrap();
        assert_eq!(l0, Label::Tag(b));

        let s1 = a.state(s1_id);
        assert_eq!(s1.pred_anchors, vec![0], "predicate [c] anchored after matching b");
        let (l1, s2_id) = s1.transition.unwrap();
        assert_eq!(l1, Label::Tag(d));
        assert!(a.state(s2_id).is_final);
        assert_eq!(a.nav_final, s2_id);

        assert_eq!(a.preds.len(), 1);
        let p = &a.preds[0];
        assert_eq!(p.anchor_state, s1_id);
        assert!(!a.state(p.start_state).self_loop, "child-axis predicate");
        let (pl, pf) = a.state(p.start_state).transition.unwrap();
        assert_eq!(pl, Label::Tag(c));
        assert_eq!(pf, p.final_state);
        assert!(a.state(p.final_state).is_final);
        assert!(p.comparison.is_none());
    }

    #[test]
    fn figure3_rule_s_structure() {
        // S: ⊖ //c — states 6-(c)->7 with self-loop on 6.
        let (a, dict) = compile("//c");
        assert!(a.state(a.start).self_loop);
        let (l, f) = a.state(a.start).transition.unwrap();
        assert_eq!(l, Label::Tag(dict.get("c").unwrap()));
        assert!(a.state(f).is_final);
        assert!(a.preds.is_empty());
        assert!(!a.has_predicates());
    }

    #[test]
    fn remaining_labels_linear() {
        let (a, dict) = compile("/a/b/c");
        let ta = dict.get("a").unwrap();
        let tb = dict.get("b").unwrap();
        let tc = dict.get("c").unwrap();
        let mut expect = vec![ta, tb, tc];
        expect.sort_unstable();
        assert_eq!(a.state(a.start).remaining_labels, expect);
        assert!(a.state(a.nav_final).remaining_labels.is_empty());
    }

    #[test]
    fn remaining_labels_skip_wildcards() {
        let (a, dict) = compile("/a/*/c");
        let ta = dict.get("a").unwrap();
        let tc = dict.get("c").unwrap();
        let mut expect = vec![ta, tc];
        expect.sort_unstable();
        assert_eq!(a.state(a.start).remaining_labels, expect);
    }

    #[test]
    fn activation_labels_include_pending_predicate_paths() {
        // //a[x//y]/b : from the start state, activating a fresh instance
        // needs a, b (nav) and x, y (predicate path).
        let (a, dict) = compile("//a[x//y]/b");
        let names: Vec<TagId> = ["a", "b", "x", "y"].iter().map(|n| dict.get(n).unwrap()).collect();
        let mut expect = names.clone();
        expect.sort_unstable();
        assert_eq!(a.state(a.start).activation_labels, expect);
        assert_eq!(a.state(a.start).preds_ahead, vec![0]);

        // Once the anchor is crossed (state after matching a), only b
        // remains for activation of *fresh* instances... the anchor is
        // behind, so the predicate path no longer counts as "ahead".
        let (_, s1) = a.state(a.start).transition.unwrap();
        assert!(a.state(s1).preds_ahead.is_empty());
        assert_eq!(a.state(s1).activation_labels, vec![dict.get("b").unwrap()]);
    }

    #[test]
    fn self_predicate_start_is_final() {
        let (a, _) = compile("//Age[. > 65]");
        assert_eq!(a.preds.len(), 1);
        let p = &a.preds[0];
        assert_eq!(p.start_state, p.final_state);
        assert!(a.state(p.start_state).is_final);
        assert!(p.comparison.is_some());
    }

    #[test]
    fn multiple_predicates_multiple_anchors() {
        let (a, _) = compile("//Folder[Protocol][MedActs//RPhys = USER]/Analysis");
        assert_eq!(a.preds.len(), 2);
        assert_eq!(a.preds[0].anchor_state, a.preds[1].anchor_state);
        let anchor = a.state(a.preds[0].anchor_state);
        assert_eq!(anchor.pred_anchors, vec![0, 1]);
    }

    #[test]
    fn label_matching() {
        assert!(Label::Wildcard.matches(TagId(9)));
        assert!(Label::Tag(TagId(9)).matches(TagId(9)));
        assert!(!Label::Tag(TagId(9)).matches(TagId(8)));
    }

    #[test]
    fn parse_helper() {
        let mut dict = TagDict::new();
        assert!(Automaton::parse("//a/b", &mut dict).is_ok());
        assert!(Automaton::parse("not a path", &mut dict).is_err());
    }
}
