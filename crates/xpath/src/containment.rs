//! Sufficient containment test for XP{[],*,//} tree patterns.
//!
//! §3.3 of the paper discusses exploiting query containment to eliminate
//! redundant rules from a policy, noting the exact problem is co-NP
//! complete for XP{[],*,//} \[MiS02\]. As the paper does, we settle for the
//! classic *sufficient* condition: `P ⊇ Q` whenever there exists a
//! homomorphism from P's tree pattern into Q's tree pattern (preserving
//! root, labels — a wildcard in P maps anywhere —, child edges to child
//! edges, descendant edges to descendant paths, and the output node of P to
//! the output node of Q). Comparison leaves map only to comparisons that
//! *imply* them.

use crate::ast::{Axis, CmpOp, NameTest, Path, Value};

/// Tree-pattern node used for the homomorphism test.
#[derive(Debug, Clone)]
struct PNode {
    /// `None` encodes the virtual document root.
    test: Option<NameTest>,
    /// Axis of the incoming edge (meaningless for the virtual root).
    axis: Axis,
    children: Vec<usize>,
    /// Comparisons attached to this node (self predicates + terminal
    /// predicate-path comparisons).
    comparisons: Vec<(CmpOp, Value)>,
    /// True for the last spine node (the output node).
    output: bool,
}

/// A tree pattern built from a [`Path`].
#[derive(Debug, Clone)]
pub struct Pattern {
    nodes: Vec<PNode>,
    root: usize,
}

impl Pattern {
    /// Converts a parsed path into its tree pattern.
    pub fn from_path(path: &Path) -> Pattern {
        let mut nodes = vec![PNode {
            test: None,
            axis: Axis::Child,
            children: Vec::new(),
            comparisons: Vec::new(),
            output: false,
        }];
        let root = 0usize;
        let mut cur = root;
        for step in &path.steps {
            let id = nodes.len();
            nodes.push(PNode {
                test: Some(step.test.clone()),
                axis: step.axis,
                children: Vec::new(),
                comparisons: Vec::new(),
                output: false,
            });
            nodes[cur].children.push(id);
            cur = id;
            for pred in &step.predicates {
                if pred.steps.is_empty() {
                    // Self predicate: comparison constrains the spine node.
                    if let Some(c) = &pred.comparison {
                        nodes[cur].comparisons.push(c.clone());
                    }
                    continue;
                }
                let mut pcur = cur;
                for pstep in &pred.steps {
                    let pid = nodes.len();
                    nodes.push(PNode {
                        test: Some(pstep.test.clone()),
                        axis: pstep.axis,
                        children: Vec::new(),
                        comparisons: Vec::new(),
                        output: false,
                    });
                    nodes[pcur].children.push(pid);
                    pcur = pid;
                }
                if let Some(c) = &pred.comparison {
                    nodes[pcur].comparisons.push(c.clone());
                }
            }
        }
        nodes[cur].output = true;
        Pattern { nodes, root }
    }
}

/// True when `sup` is guaranteed to contain `sub` (sufficient condition:
/// a pattern homomorphism exists). A `false` answer is inconclusive.
pub fn contains(sup: &Path, sub: &Path) -> bool {
    let p = Pattern::from_path(sup);
    let q = Pattern::from_path(sub);
    let mut memo = vec![None; p.nodes.len() * q.nodes.len()];
    can_map(&p, &q, p.root, q.root, &mut memo)
}

/// Memoized check: can `p_id` (and its whole subtree) map onto `q_id`?
fn can_map(
    p: &Pattern,
    q: &Pattern,
    p_id: usize,
    q_id: usize,
    memo: &mut Vec<Option<bool>>,
) -> bool {
    let key = p_id * q.nodes.len() + q_id;
    if let Some(v) = memo[key] {
        return v;
    }
    // Break (harmless, acyclic) recursion on the memo key.
    memo[key] = Some(false);
    let pn = &p.nodes[p_id];
    let qn = &q.nodes[q_id];
    let ok = node_compatible(pn, qn)
        && pn.children.iter().all(|&pc| {
            let axis = p.nodes[pc].axis;
            match axis {
                // A child edge must map onto a child *edge* of Q — a
                // descendant-axis child of q sits at unknown depth.
                Axis::Child => qn
                    .children
                    .iter()
                    .filter(|&&qc| q.nodes[qc].axis == Axis::Child)
                    .any(|&qc| can_map(p, q, pc, qc, memo)),
                // A descendant edge maps onto any downward path (≥ 1 edge).
                Axis::Descendant => {
                    descendants(q, q_id).into_iter().any(|qd| can_map(p, q, pc, qd, memo))
                }
            }
        });
    memo[key] = Some(ok);
    ok
}

fn node_compatible(pn: &PNode, qn: &PNode) -> bool {
    // Virtual roots map only to each other.
    match (&pn.test, &qn.test) {
        (None, None) => {}
        (None, Some(_)) | (Some(_), None) => return false,
        (Some(NameTest::Wildcard), Some(_)) => {}
        (Some(NameTest::Name(a)), Some(NameTest::Name(b))) if a == b => {}
        _ => return false,
    }
    // Output alignment: P's output node must land on Q's output node.
    if pn.output && !qn.output {
        return false;
    }
    // Every comparison required by P must be implied by one of Q's.
    pn.comparisons.iter().all(|pc| qn.comparisons.iter().any(|qc| implies(qc, pc)))
}

fn descendants(q: &Pattern, id: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut stack: Vec<usize> = q.nodes[id].children.clone();
    while let Some(n) = stack.pop() {
        out.push(n);
        stack.extend(q.nodes[n].children.iter().copied());
    }
    out
}

/// Does the comparison `a` imply the comparison `b` (on the same node)?
fn implies(a: &(CmpOp, Value), b: &(CmpOp, Value)) -> bool {
    if a == b {
        return true;
    }
    // Numeric implication for literal values.
    let (Value::Literal(av), Value::Literal(bv)) = (&a.1, &b.1) else {
        return false;
    };
    let (Ok(x), Ok(y)) = (av.parse::<f64>(), bv.parse::<f64>()) else {
        return false;
    };
    use CmpOp::*;
    match (a.0, b.0) {
        // v = x implies v op y?
        (Eq, Eq) => x == y,
        (Eq, Ne) => x != y,
        (Eq, Lt) => x < y,
        (Eq, Le) => x <= y,
        (Eq, Gt) => x > y,
        (Eq, Ge) => x >= y,
        // v > x implies v > y when x >= y, etc.
        (Gt, Gt) => x >= y,
        (Gt, Ge) => x >= y,
        (Ge, Ge) => x >= y,
        (Ge, Gt) => x > y,
        (Lt, Lt) => x <= y,
        (Lt, Le) => x <= y,
        (Le, Le) => x <= y,
        (Le, Lt) => x < y,
        (Gt, Ne) => x >= y,
        (Lt, Ne) => x <= y,
        _ => false,
    }
}

/// Containment of rule *scopes* (object node-sets extended to their whole
/// subtrees by the cascading propagation of §2): `scope(sup) ⊇ scope(sub)`.
///
/// `scope(P) = nodes(P) ∪ nodes(P//*)`, so the test decomposes into two
/// sufficient disjunctions.
pub fn scope_contains(sup: &Path, sub: &Path) -> bool {
    let sup_ext = extend_descendants(sup);
    let sub_ext = extend_descendants(sub);
    (contains(sup, sub) || contains(&sup_ext, sub))
        && (contains(sup, &sub_ext) || contains(&sup_ext, &sub_ext))
}

/// Appends a `//*` step (the propagated scope below the object nodes).
fn extend_descendants(p: &Path) -> Path {
    let mut out = p.clone();
    out.steps.push(crate::ast::Step {
        axis: Axis::Descendant,
        test: NameTest::Wildcard,
        predicates: Vec::new(),
    });
    out
}

/// Report produced by [`redundant_paths`]: indexes of redundant paths.
///
/// A path `S` is flagged redundant when another *same-signed* path `R`
/// contains it and no opposite-signed path could carve an exception inside
/// `S` but outside... — following §3.3, we use the *strong* elimination
/// condition: `S` is redundant iff some same-signed `R ⊇ S` and **every**
/// opposite-signed rule `T` is either disjoint-by-containment from `S`
/// (`¬(S ⊇ T)` conservative proxy) or also contains `S`'s container...
/// In keeping with the paper ("this strong elimination condition is
/// sufficient but not necessary"), we only eliminate `S` when there are no
/// opposite-signed rules at all, or every opposite-signed rule `T`
/// satisfies `T ⊇ R` (so the exception applies equally with or without S).
///
/// One case needs no guard at all: *mutually* contained same-signed rules
/// have identical match sets on every document, so duplicates beyond the
/// first are idempotent under the conflict-resolution policies and are
/// always dropped.
pub fn redundant_paths(paths: &[(bool, Path)]) -> Vec<usize> {
    redundant_by(paths, contains).redundant
}

/// Same as [`redundant_paths`] but comparing rule *scopes* (propagation
/// included) — the variant used by policy minimization.
pub fn redundant_rules(paths: &[(bool, Path)]) -> Vec<usize> {
    redundant_by(paths, scope_contains).redundant
}

/// Full minimization report: what [`redundant_rules`] returns, plus the
/// containment structure found along the way (policy-compiler
/// observability).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RedundancyReport {
    /// Indexes of paths proven redundant (droppable without changing any
    /// authorized view).
    pub redundant: Vec<usize>,
    /// Number of ordered same-signed pairs `(R, S)`, `R ≠ S`, with
    /// `R ⊇ S` proven — the raw containment structure the elimination
    /// worked from (mutual containments count twice).
    pub containment_pairs: usize,
}

/// Scope-containment variant of [`redundant_paths`] returning the full
/// [`RedundancyReport`] — the entry point used by `CompiledPolicy`.
pub fn redundant_rules_report(paths: &[(bool, Path)]) -> RedundancyReport {
    redundant_by(paths, scope_contains)
}

fn redundant_by(paths: &[(bool, Path)], le: impl Fn(&Path, &Path) -> bool) -> RedundancyReport {
    let n = paths.len();
    // Containment matrix: m[r][s] ⇔ le(paths[r], paths[s]) — computed once
    // so the elimination scan below costs no further homomorphism tests.
    let mut m = vec![false; n * n];
    let mut containment_pairs = 0usize;
    for (r, (sign_r, pr)) in paths.iter().enumerate() {
        for (s, (sign_s, ps)) in paths.iter().enumerate() {
            if r == s {
                continue;
            }
            let c = le(pr, ps);
            m[r * n + s] = c;
            if c && sign_r == sign_s {
                containment_pairs += 1;
            }
        }
    }
    let mut out: Vec<usize> = Vec::new();
    for (i, (sign_s, _)) in paths.iter().enumerate() {
        for (j, (sign_r, _)) in paths.iter().enumerate() {
            if i == j || sign_s != sign_r {
                continue;
            }
            if out.contains(&j) {
                continue; // do not justify elimination by an eliminated rule
            }
            if !m[j * n + i] {
                continue; // need R ⊇ S
            }
            if m[i * n + j] {
                // Mutual same-signed containment: identical match sets on
                // every document, so the duplicates are idempotent under
                // Denial-Takes-Precedence / Most-Specific-Object — drop all
                // but the lowest-indexed representative unconditionally
                // (no opposite-signed rule can distinguish two rules with
                // the same sign and the same scope).
                if j > i {
                    continue; // keep the earliest copy
                }
                out.push(i);
                break;
            }
            // Strict containment: §3.3's strong elimination condition —
            // safe only when every opposite-signed rule T also contains
            // the container R (the exception applies equally with or
            // without S).
            let safe = paths
                .iter()
                .enumerate()
                .filter(|(k, (sign_t, _))| *k != i && *k != j && sign_t != sign_s)
                .all(|(k, _)| m[k * n + j]);
            if safe {
                out.push(i);
                break;
            }
        }
    }
    RedundancyReport { redundant: out, containment_pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_path;

    fn c(sup: &str, sub: &str) -> bool {
        contains(&parse_path(sup).unwrap(), &parse_path(sub).unwrap())
    }

    #[test]
    fn reflexive() {
        for p in ["/a", "//a/b", "//a[b=1]/c", "//a/*//b"] {
            assert!(c(p, p), "{p} should contain itself");
        }
    }

    #[test]
    fn descendant_contains_child() {
        assert!(c("//b", "/a/b"));
        assert!(c("//a//b", "/a/b"));
        assert!(c("//a//b", "//a/x/b"));
        assert!(!c("/a/b", "//b"));
    }

    #[test]
    fn wildcard_contains_names() {
        assert!(c("/a/*", "/a/b"));
        assert!(!c("/a/b", "/a/*"));
        assert!(c("//*", "//b"));
    }

    #[test]
    fn predicates_weaken_containment() {
        assert!(c("//a", "//a[b]"), "fewer predicates contain more");
        assert!(!c("//a[b]", "//a"), "predicate cannot contain predicate-free");
        assert!(c("//a[b]", "//a[b][c]"));
    }

    #[test]
    fn numeric_comparison_implication() {
        assert!(c("//g[x > 250]", "//g[x > 300]"));
        assert!(!c("//g[x > 300]", "//g[x > 250]"));
        assert!(c("//g[x > 250]", "//g[x = 300]"));
        assert!(c("//g[x >= 250]", "//g[x > 250]"));
        assert!(!c("//g[x > 250]", "//g[x >= 250]"));
        assert!(c("//g[x != 5]", "//g[x = 6]"));
        assert!(c("//g[x < 10]", "//g[x <= 9]"));
    }

    #[test]
    fn string_comparisons_exact_only() {
        assert!(c("//p[t = G3]", "//p[t = G3]"));
        assert!(!c("//p[t = G3]", "//p[t = G4]"));
    }

    #[test]
    fn output_node_must_align() {
        // //a/b selects b nodes; //a selects a nodes — incomparable.
        assert!(!c("//a", "//a/b"));
        assert!(!c("//a/b", "//a"));
    }

    #[test]
    fn paper_example_structural() {
        // §3.3: R=/a, S=/a/b[P1] — R contains S? R selects `a` nodes and S
        // selects `b` nodes, so as node sets no; but with rule propagation
        // the *scope* of R covers S. Scope containment is node containment
        // of the rule objects followed by propagation — the optimizer tests
        // the object paths extended by //*.
        assert!(c("/a//*", "/a/b"));
        assert!(c("/a//*", "/a/b[x=1]/c"));
    }

    #[test]
    fn redundancy_detection() {
        let paths =
            vec![(true, parse_path("//a//*").unwrap()), (true, parse_path("//a/b").unwrap())];
        assert_eq!(redundant_paths(&paths), vec![1]);
    }

    #[test]
    fn scope_containment() {
        let a = parse_path("//a").unwrap();
        let ab = parse_path("//a/b").unwrap();
        assert!(scope_contains(&a, &ab), "the scope of //a covers //a/b and below");
        assert!(!scope_contains(&ab, &a));
        assert!(scope_contains(&a, &a), "scope containment is reflexive");
        let c = parse_path("//c").unwrap();
        assert!(!scope_contains(&a, &c));
    }

    #[test]
    fn redundant_rules_uses_scopes() {
        let paths = vec![(true, parse_path("//a").unwrap()), (true, parse_path("//a/b").unwrap())];
        assert_eq!(redundant_rules(&paths), vec![1]);
    }

    #[test]
    fn redundancy_blocked_by_opposite_rule() {
        // T: ⊖ //a/b/c sits inside S: ⊕ //a/b which sits inside R: ⊕ //a//*.
        // Eliminating S would be wrong if T carved an exception between R
        // and S under Most-Specific-Object (S re-grants below T's level...
        // here we conservatively keep S).
        let paths = vec![
            (true, parse_path("//a//*").unwrap()),
            (true, parse_path("//a/b//*").unwrap()),
            (false, parse_path("//a/b/c").unwrap()),
        ];
        assert!(redundant_paths(&paths).is_empty());
    }

    #[test]
    fn mutual_containment_removes_only_one() {
        let paths =
            vec![(true, parse_path("//a/b").unwrap()), (true, parse_path("//a/b").unwrap())];
        let r = redundant_paths(&paths);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn duplicates_dropped_even_under_opposite_rules() {
        // The strong condition would keep the duplicate (⊖ //a/b/c does
        // not contain //a/b), but identical match sets make it safe.
        let paths = vec![
            (true, parse_path("//a/b").unwrap()),
            (true, parse_path("//a/b").unwrap()),
            (true, parse_path("//a/b").unwrap()),
            (false, parse_path("//a/b/c").unwrap()),
        ];
        assert_eq!(redundant_paths(&paths), vec![1, 2], "keep only the first copy");
    }

    #[test]
    fn report_counts_containment_pairs() {
        let paths = vec![(true, parse_path("//a").unwrap()), (true, parse_path("//a/b").unwrap())];
        let report = redundant_rules_report(&paths);
        assert_eq!(report.redundant, vec![1], "//a/b's scope sits inside //a's");
        assert_eq!(report.containment_pairs, 1);
        // An opposite-signed rule blocks the elimination (strong condition)
        // but the containment pair is still reported.
        let guarded = vec![
            (true, parse_path("//a").unwrap()),
            (true, parse_path("//a/b").unwrap()),
            (false, parse_path("//c").unwrap()),
        ];
        let report = redundant_rules_report(&guarded);
        assert!(report.redundant.is_empty(), "conservative under the deny");
        assert_eq!(report.containment_pairs, 1);
        // Mutual containment counts both directions.
        let dupes = vec![(true, parse_path("//x").unwrap()), (true, parse_path("//x").unwrap())];
        assert_eq!(redundant_rules_report(&dupes).containment_pairs, 2);
    }
}
