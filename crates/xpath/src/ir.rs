//! Flat evaluation IR: N rule automata merged into one instruction bank.
//!
//! The streaming evaluator of §3 runs every SAX event against every rule
//! automaton of the policy. With per-rule [`Automaton`]s that walk is a
//! pointer chase across N heap-allocated state vectors; rule-heavy roles
//! (the paper's Researcher-class policies) pay it on every event. This
//! module compiles the whole bank into **one contiguous instruction
//! sequence** — the style of a bytecode IR — so the hot loop touches a
//! single `Vec<Instr>` with branch-predictable dispatch and zero per-event
//! allocation:
//!
//! ```text
//!   rule 0: ⊕ //b[c]/d      rule 1: ⊖ //c          query: //d
//!   ┌──────────────────────────────────────────────────────────┐
//!   │ i0 ─b→ i1 ─d→ i2│ i3 ─c→ i4 │ i5 ─c→ i6 │ i7 ─d→ i8 │    │ instrs
//!   └──────────────────────────────────────────────────────────┘
//!      owner 0  (nav + pred chain)   owner 1      OWNER_QUERY
//!   starts: [i0, i5]        preds: [{owner 0, start i3}]
//!   label_pool / anchor_pool: shared side tables (range-addressed)
//! ```
//!
//! An instruction is the flat image of one automaton state: its chain
//! transition (label + target index), self-loop and final bits, its
//! `RemainingLabels` set (§4.2) as a range into a deduplicated shared
//! pool, and the predicate paths anchored on arrival as a range of
//! *global* predicate ids. Tokens then carry a single `u32` instruction
//! index instead of an (automaton, state) pair.

use crate::ast::{CmpOp, Value};
use crate::automaton::{Automaton, Label};
use std::collections::HashMap;
use xsac_xml::TagId;

/// Label sentinel: the instruction has no outgoing chain transition.
pub const NO_TRANSITION: u32 = u32::MAX;
/// Label sentinel: the transition matches any tag (`*`).
pub const WILDCARD: u32 = u32::MAX - 1;
/// Owner sentinel: the instruction belongs to the (single) query automaton
/// appended to a session's instruction bank, not to a policy rule.
pub const OWNER_QUERY: u16 = u16::MAX;

/// Instruction flag: the state carries a `*` self-transition (descendant
/// axis pending).
pub const FLAG_SELF_LOOP: u8 = 1;
/// Instruction flag: final state of its (navigational or predicate) chain.
pub const FLAG_FINAL: u8 = 1 << 1;

/// A `(start, len)` range into one of the shared side pools.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolRange {
    /// First element index.
    pub start: u32,
    /// Number of elements.
    pub len: u32,
}

impl PoolRange {
    /// True when the range is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// One flat instruction: the image of one automaton state.
///
/// 20 bytes, `Copy`, no heap indirection — the per-event token walk reads
/// exactly one of these per live token.
#[derive(Clone, Copy, Debug)]
pub struct Instr {
    /// Chain transition label: a `TagId` value, [`WILDCARD`], or
    /// [`NO_TRANSITION`].
    pub label: u32,
    /// Global index of the transition target (meaningful only when `label`
    /// is not [`NO_TRANSITION`]).
    pub next: u32,
    /// `RemainingLabels` of §4.2 as a range into
    /// [`InstrSeq::label_pool`].
    pub remaining: PoolRange,
    /// Predicate paths anchored when a token *arrives* here: a range into
    /// [`InstrSeq::anchor_pool`] of global predicate ids.
    pub anchors: PoolRange,
    /// Owning automaton: policy-rule index or [`OWNER_QUERY`].
    pub owner: u16,
    /// [`FLAG_SELF_LOOP`] | [`FLAG_FINAL`].
    pub flags: u8,
}

impl Instr {
    /// True when the state has a `*` self-transition.
    #[inline]
    pub fn self_loop(&self) -> bool {
        self.flags & FLAG_SELF_LOOP != 0
    }

    /// True for the final state of its chain.
    #[inline]
    pub fn is_final(&self) -> bool {
        self.flags & FLAG_FINAL != 0
    }

    /// True when an `open(tag)` event triggers the chain transition.
    /// (Real tag ids are always below [`WILDCARD`], so [`NO_TRANSITION`]
    /// can never match.)
    #[inline]
    pub fn matches(&self, tag: TagId) -> bool {
        self.label == tag.0 || self.label == WILDCARD
    }
}

/// One predicate path of the merged bank, addressed by *global* id.
#[derive(Clone, Debug)]
pub struct IrPred {
    /// Owning automaton: policy-rule index or [`OWNER_QUERY`].
    pub owner: u16,
    /// Global index of the predicate chain's first instruction.
    pub start: u32,
    /// Self predicate `[. op v]` / bare `[.]`: the chain start *is* the
    /// final state, so the predicate resolves at its anchor.
    pub self_pred: bool,
    /// Optional comparison on the matched element's immediate text.
    pub comparison: Option<(CmpOp, Value)>,
}

/// The merged instruction bank of a compiled policy (plus, per session,
/// an appended query automaton).
#[derive(Clone, Debug, Default)]
pub struct InstrSeq {
    /// All instructions, automaton by automaton, chains contiguous.
    pub instrs: Vec<Instr>,
    /// Navigational start instruction of each policy rule (indexed by
    /// owner; the query start is returned by [`InstrSeq::append`]).
    pub starts: Vec<u32>,
    /// All predicate paths, by global predicate id.
    pub preds: Vec<IrPred>,
    /// Deduplicated `RemainingLabels` storage.
    pub label_pool: Vec<TagId>,
    /// Global predicate ids anchored per instruction.
    pub anchor_pool: Vec<u32>,
}

impl InstrSeq {
    /// Compiles a bank of rule automata into one flat sequence. The i-th
    /// automaton becomes owner `i`.
    pub fn compile<'a, I>(automata: I) -> InstrSeq
    where
        I: IntoIterator<Item = &'a Automaton>,
    {
        let mut seq = InstrSeq::default();
        let mut pool_index = HashMap::new();
        for (owner, a) in automata.into_iter().enumerate() {
            let owner = u16::try_from(owner).expect("more than u16::MAX - 1 rules");
            assert!(owner != OWNER_QUERY, "rule owner collides with OWNER_QUERY");
            let start = seq.append_automaton(a, owner, &mut pool_index);
            seq.starts.push(start);
        }
        seq
    }

    /// Appends one more automaton (used for the per-session query, which
    /// extends a clone of the role's shared bank). Returns the global
    /// index of its navigational start instruction.
    pub fn append(&mut self, a: &Automaton, owner: u16) -> u32 {
        // A fresh dedup map: labels are still pooled within this append,
        // merely not re-shared with earlier automata.
        let mut pool_index = HashMap::new();
        self.append_automaton(a, owner, &mut pool_index)
    }

    fn append_automaton(
        &mut self,
        a: &Automaton,
        owner: u16,
        pool_index: &mut HashMap<Vec<TagId>, PoolRange>,
    ) -> u32 {
        let base = self.instrs.len() as u32;
        let pred_base = self.preds.len() as u32;
        for st in &a.states {
            let (label, next) = match st.transition {
                Some((Label::Tag(t), n)) => {
                    debug_assert!(t.0 < WILDCARD, "tag id collides with a label sentinel");
                    (t.0, base + n)
                }
                Some((Label::Wildcard, n)) => (WILDCARD, base + n),
                None => (NO_TRANSITION, 0),
            };
            let remaining = self.intern_labels(&st.remaining_labels, pool_index);
            let anchors = if st.pred_anchors.is_empty() {
                PoolRange::default()
            } else {
                let start = self.anchor_pool.len() as u32;
                self.anchor_pool.extend(st.pred_anchors.iter().map(|&p| pred_base + p));
                PoolRange { start, len: st.pred_anchors.len() as u32 }
            };
            let mut flags = 0u8;
            if st.self_loop {
                flags |= FLAG_SELF_LOOP;
            }
            if st.is_final {
                flags |= FLAG_FINAL;
            }
            self.instrs.push(Instr { label, next, remaining, anchors, owner, flags });
        }
        for p in &a.preds {
            self.preds.push(IrPred {
                owner,
                start: base + p.start_state,
                self_pred: p.start_state == p.final_state,
                comparison: p.comparison.clone(),
            });
        }
        base + a.start
    }

    fn intern_labels(
        &mut self,
        labels: &[TagId],
        pool_index: &mut HashMap<Vec<TagId>, PoolRange>,
    ) -> PoolRange {
        if labels.is_empty() {
            return PoolRange::default();
        }
        if let Some(&r) = pool_index.get(labels) {
            return r;
        }
        let start = self.label_pool.len() as u32;
        self.label_pool.extend_from_slice(labels);
        let r = PoolRange { start, len: labels.len() as u32 };
        pool_index.insert(labels.to_vec(), r);
        r
    }

    /// Instruction accessor.
    #[inline]
    pub fn instr(&self, i: u32) -> &Instr {
        &self.instrs[i as usize]
    }

    /// Resolves a range into the `RemainingLabels` pool.
    #[inline]
    pub fn labels(&self, r: PoolRange) -> &[TagId] {
        &self.label_pool[r.start as usize..(r.start + r.len) as usize]
    }

    /// Resolves a range into the anchored-predicate pool.
    #[inline]
    pub fn anchors(&self, r: PoolRange) -> &[u32] {
        &self.anchor_pool[r.start as usize..(r.start + r.len) as usize]
    }

    /// Number of instructions in the bank.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when the bank holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

// The bank is shared across session threads via `Arc` (one per role).
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<InstrSeq>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_path;
    use xsac_xml::TagDict;

    fn bank(exprs: &[&str]) -> (InstrSeq, Vec<Automaton>, TagDict) {
        let mut dict = TagDict::new();
        let autos: Vec<Automaton> =
            exprs.iter().map(|e| Automaton::compile(&parse_path(e).unwrap(), &mut dict)).collect();
        let seq = InstrSeq::compile(autos.iter());
        (seq, autos, dict)
    }

    /// Every instruction must be the faithful image of its source state.
    fn assert_mirrors(seq: &InstrSeq, autos: &[Automaton]) {
        let mut base = 0u32;
        let mut pred_base = 0u32;
        for (owner, a) in autos.iter().enumerate() {
            assert_eq!(seq.starts[owner], base + a.start);
            for (s, st) in a.states.iter().enumerate() {
                let i = seq.instr(base + s as u32);
                assert_eq!(i.owner as usize, owner);
                assert_eq!(i.self_loop(), st.self_loop);
                assert_eq!(i.is_final(), st.is_final);
                match st.transition {
                    None => assert_eq!(i.label, NO_TRANSITION),
                    Some((Label::Wildcard, n)) => {
                        assert_eq!(i.label, WILDCARD);
                        assert_eq!(i.next, base + n);
                    }
                    Some((Label::Tag(t), n)) => {
                        assert_eq!(i.label, t.0);
                        assert_eq!(i.next, base + n);
                    }
                }
                assert_eq!(seq.labels(i.remaining), &st.remaining_labels[..]);
                let anchors: Vec<u32> = st.pred_anchors.iter().map(|&p| pred_base + p).collect();
                assert_eq!(seq.anchors(i.anchors), &anchors[..]);
            }
            for (pi, p) in a.preds.iter().enumerate() {
                let ip = &seq.preds[pred_base as usize + pi];
                assert_eq!(ip.owner as usize, owner);
                assert_eq!(ip.start, base + p.start_state);
                assert_eq!(ip.self_pred, p.start_state == p.final_state);
                assert_eq!(ip.comparison, p.comparison);
            }
            base += a.states.len() as u32;
            pred_base += a.preds.len() as u32;
        }
        assert_eq!(seq.len() as u32, base);
        assert_eq!(seq.preds.len() as u32, pred_base);
    }

    #[test]
    fn single_rule_mirrors_automaton() {
        let (seq, autos, _) = bank(&["//b[c]/d"]);
        assert_mirrors(&seq, &autos);
    }

    #[test]
    fn merged_bank_mirrors_every_automaton() {
        let (seq, autos, _) = bank(&[
            "//b[c]/d",
            "//c",
            "/a/*/x[y > 5]",
            "//Folder[Protocol][MedActs//RPhys = USER]/Analysis",
            "//Age[. > 65]",
        ]);
        assert_mirrors(&seq, &autos);
    }

    #[test]
    fn label_matching_and_sentinels() {
        let (seq, _, dict) = bank(&["//b/d"]);
        let b = dict.get("b").unwrap();
        let d = dict.get("d").unwrap();
        let start = seq.instr(seq.starts[0]);
        assert!(start.matches(b));
        assert!(!start.matches(d));
        assert!(start.self_loop());
        let mid = seq.instr(start.next);
        assert!(mid.matches(d));
        let fin = seq.instr(mid.next);
        assert_eq!(fin.label, NO_TRANSITION);
        assert!(fin.is_final());
        // A final state never matches anything.
        assert!(!fin.matches(b) && !fin.matches(d));
    }

    #[test]
    fn wildcard_label_matches_all() {
        let (seq, _, dict) = bank(&["/a/*"]);
        let a = dict.get("a").unwrap();
        let start = seq.instr(seq.starts[0]);
        let second = seq.instr(start.next);
        assert_eq!(second.label, WILDCARD);
        assert!(second.matches(a));
        assert!(second.matches(TagId(4_000_000)));
    }

    #[test]
    fn remaining_label_pool_is_shared() {
        // Both rules need {a, b} remaining at their start state: the pool
        // stores the set once.
        let (seq, autos, _) = bank(&["/a/b", "/a/b"]);
        assert_mirrors(&seq, &autos);
        let r0 = seq.instr(seq.starts[0]).remaining;
        let r1 = seq.instr(seq.starts[1]).remaining;
        assert_eq!(r0, r1, "identical label sets should share one pool range");
        assert_eq!(seq.label_pool.len(), 3, "{{a,b}} and {{b}} only");
    }

    #[test]
    fn append_assigns_query_owner_and_global_preds() {
        let (mut seq, _, mut dict) = bank(&["//b[c]/d"]);
        let rule_preds = seq.preds.len();
        let rule_instrs = seq.len();
        let q = Automaton::parse("//d[e]", &mut dict).unwrap();
        let qstart = seq.append(&q, OWNER_QUERY);
        assert_eq!(qstart as usize, rule_instrs);
        assert_eq!(seq.instr(qstart).owner, OWNER_QUERY);
        assert_eq!(seq.preds.len(), rule_preds + 1);
        assert_eq!(seq.preds[rule_preds].owner, OWNER_QUERY);
        // The query's anchored predicate ids are global (offset past the
        // rules' predicates).
        let anchor_instr = seq.instr(seq.instr(qstart).next);
        assert_eq!(seq.anchors(anchor_instr.anchors), &[rule_preds as u32]);
    }

    #[test]
    fn empty_bank() {
        let seq = InstrSeq::compile(std::iter::empty());
        assert!(seq.is_empty());
        assert_eq!(seq.len(), 0);
        assert!(seq.starts.is_empty());
    }
}
