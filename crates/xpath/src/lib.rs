//! The XPath fragment XP{[],*,//} used by the paper's access-control model.
//!
//! "We consider a rather robust subset of XPath denoted by XP{[],*,//}
//! \[MiS02\]. This subset, widely used in practice, consists of node tests,
//! the child axis (/), the descendant axis (//), wildcards (*) and
//! predicates or branches [...]" (§2).
//!
//! Place in the workspace (see the repo-root `README.md` architecture
//! map): this crate is the §2–§3.1 layer — access rules and queries are
//! parsed here and compiled into the automata that `xsac-core`'s
//! streaming evaluator executes.
//!
//! * [`ast`] — paths, steps, predicates, comparison operators;
//! * [`parser`] — text → AST;
//! * [`automaton`] — AST → non-deterministic *Access Rule Automaton* (ARA)
//!   with one navigational path and zero or more predicate paths (§3.1),
//!   including the `RemainingLabels` metadata used by the skip index (§4.2);
//! * [`containment`] — homomorphism-based sufficient containment test used
//!   for the static policy minimization discussed in §3.3;
//! * [`ir`] — the flat evaluation IR: a policy's automaton bank merged
//!   into one contiguous instruction sequence for the hot event loop.

pub mod ast;
pub mod automaton;
pub mod containment;
pub mod ir;
pub mod parser;

pub use ast::{Axis, CmpOp, NameTest, Path, Predicate, Step, Value};
pub use automaton::{Automaton, Label, PredPathInfo, StateId};
pub use containment::{redundant_rules_report, RedundancyReport};
pub use ir::{Instr, InstrSeq, IrPred, PoolRange, OWNER_QUERY};
pub use parser::{parse_path, XPathError};
