//! Parser for the XP{[],*,//} fragment.
//!
//! Grammar (whitespace insignificant except inside quoted literals):
//!
//! ```text
//! path      := ('/' | '//') step (('/' | '//') step)*
//! step      := nametest predicate*
//! nametest  := NAME | '*'
//! predicate := '[' relpath (cmp value)? ']'
//! relpath   := '.' | ('//')? step (('/' | '//') step)*
//! cmp       := '=' | '!=' | '<' | '<=' | '>' | '>='
//! value     := quoted | bareword | 'USER' | '$USER'
//! ```

use crate::ast::{Axis, CmpOp, NameTest, Path, Predicate, Step, Value};
use std::fmt;

/// XPath parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError {
    /// Byte offset in the expression.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XPathError {}

struct Cursor<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, XPathError> {
        Err(XPathError { offset: self.pos, message: message.into() })
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let r = self.rest();
        let t = r.trim_start();
        self.pos += r.len() - t.len();
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    /// `//` must be checked before `/`.
    fn take_axis(&mut self) -> Option<Axis> {
        if self.eat("//") {
            Some(Axis::Descendant)
        } else if self.eat("/") {
            Some(Axis::Child)
        } else {
            None
        }
    }

    fn take_name(&mut self) -> Result<String, XPathError> {
        let r = self.rest();
        let end = r
            .char_indices()
            .find(|(_, c)| !(c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':' | '@')))
            .map(|(i, _)| i)
            .unwrap_or(r.len());
        if end == 0 {
            return self.err("expected an element name or '*'");
        }
        self.pos += end;
        Ok(r[..end].to_owned())
    }

    fn take_nametest(&mut self) -> Result<NameTest, XPathError> {
        if self.eat("*") {
            Ok(NameTest::Wildcard)
        } else {
            Ok(NameTest::Name(self.take_name()?))
        }
    }

    fn take_cmp(&mut self) -> Option<CmpOp> {
        self.skip_ws();
        // Longest operators first.
        for (tok, op) in [
            ("!=", CmpOp::Ne),
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("=", CmpOp::Eq),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if self.eat(tok) {
                return Some(op);
            }
        }
        None
    }

    fn take_value(&mut self) -> Result<Value, XPathError> {
        self.skip_ws();
        match self.peek() {
            Some(q @ ('"' | '\'')) => {
                self.pos += 1;
                let r = self.rest();
                let Some(end) = r.find(q) else {
                    return self.err("unterminated string literal");
                };
                let v = r[..end].to_owned();
                self.pos += end + 1;
                Ok(Value::Literal(v))
            }
            Some(_) => {
                // Bare word up to ']' (trimmed); `USER` / `$USER` is special.
                let r = self.rest();
                let Some(end) = r.find(']') else {
                    return self.err("expected ']' after predicate value");
                };
                let raw = r[..end].trim();
                if raw.is_empty() {
                    return self.err("empty predicate value");
                }
                self.pos += end; // leave ']' for the caller
                if raw == "USER" || raw == "$USER" {
                    Ok(Value::User)
                } else {
                    Ok(Value::Literal(raw.to_owned()))
                }
            }
            None => self.err("expected a value"),
        }
    }

    fn take_predicate(&mut self) -> Result<Predicate, XPathError> {
        // '[' already consumed.
        self.skip_ws();
        let mut steps = Vec::new();
        if self.eat(".") {
            // self path
        } else {
            // Optional leading '//' (e.g. `[//RPhys = USER]`); a leading
            // name means a child step (`[Protocol]` ≡ `[./Protocol]`).
            let first_axis = if self.eat("//") {
                Axis::Descendant
            } else {
                let _ = self.eat("/"); // tolerate explicit './'-less '/'
                Axis::Child
            };
            let test = self.take_nametest()?;
            steps.push(Step { axis: first_axis, test, predicates: Vec::new() });
            while let Some(axis) = self.take_axis() {
                let test = self.take_nametest()?;
                steps.push(Step { axis, test, predicates: Vec::new() });
            }
        }
        self.skip_ws();
        let comparison = match self.take_cmp() {
            Some(op) => {
                let value = self.take_value()?;
                Some((op, value))
            }
            None => None,
        };
        self.skip_ws();
        if !self.eat("]") {
            return self.err(
                "expected ']' (nested predicates are not part of the linear ARA predicate paths)",
            );
        }
        Ok(Predicate { steps, comparison })
    }
}

/// Parses an absolute XP{[],*,//} path such as
/// `//Folder[Protocol/Type=G3]//LabResults//G3`.
pub fn parse_path(input: &str) -> Result<Path, XPathError> {
    let mut c = Cursor { input, pos: 0 };
    c.skip_ws();
    let mut steps = Vec::new();
    let Some(first_axis) = c.take_axis() else {
        return c.err("a path must start with '/' or '//'");
    };
    let mut axis = first_axis;
    loop {
        let test = c.take_nametest()?;
        let mut predicates = Vec::new();
        loop {
            c.skip_ws();
            if c.eat("[") {
                predicates.push(c.take_predicate()?);
            } else {
                break;
            }
        }
        steps.push(Step { axis, test, predicates });
        c.skip_ws();
        match c.take_axis() {
            Some(a) => axis = a,
            None => break,
        }
    }
    c.skip_ws();
    if c.pos != c.input.len() {
        return c.err(format!("unexpected trailing input: {:?}", c.rest()));
    }
    Ok(Path { steps })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        parse_path(s).unwrap_or_else(|e| panic!("{s}: {e}"))
    }

    #[test]
    fn simple_child_path() {
        let path = p("/a/b/c");
        assert_eq!(path.steps.len(), 3);
        assert!(path.steps.iter().all(|s| s.axis == Axis::Child));
    }

    #[test]
    fn descendant_and_wildcard() {
        let path = p("//a/*/b");
        assert_eq!(path.steps[0].axis, Axis::Descendant);
        assert_eq!(path.steps[1].test, NameTest::Wildcard);
        assert!(path.has_descendant_axis());
    }

    #[test]
    fn paper_rules_parse() {
        // Every rule from Figures 1 and 7 of the paper.
        for expr in [
            "//Folder/Admin",
            "//MedActs[//RPhys = USER]",
            "//Act[RPhys != USER]/Details",
            "//Folder[MedActs//RPhys = USER]/Analysis",
            "//Folder[Protocol]//Age",
            "//Folder[Protocol/Type=G3]//LabResults//G3",
            "//G3[Cholesterol > 250]",
            "//Admin",
            "/a[d = 4]/c",
            "//c/e[m=3]",
            "//c[//i = 3]//f",
            "//h[k = 2]",
            "//Folder[//Age>65]",
        ] {
            let _ = p(expr);
        }
    }

    #[test]
    fn predicate_structure() {
        let path = p("//Folder[Protocol/Type=G3]//LabResults");
        let pred = &path.steps[0].predicates[0];
        assert_eq!(pred.steps.len(), 2);
        assert_eq!(pred.steps[0].axis, Axis::Child);
        assert_eq!(pred.comparison, Some((CmpOp::Eq, Value::Literal("G3".into()))));
        assert_eq!(path.predicate_count(), 1);
    }

    #[test]
    fn user_variable() {
        let path = p("//MedActs[//RPhys = USER]");
        let pred = &path.steps[0].predicates[0];
        assert_eq!(pred.steps[0].axis, Axis::Descendant);
        assert_eq!(pred.comparison, Some((CmpOp::Eq, Value::User)));
    }

    #[test]
    fn self_predicate() {
        let path = p("//Age[. > 65]");
        let pred = &path.steps[0].predicates[0];
        assert!(pred.steps.is_empty());
        assert_eq!(pred.comparison, Some((CmpOp::Gt, Value::Literal("65".into()))));
    }

    #[test]
    fn quoted_values() {
        let path = p("//a[b = \"x y]z\"]");
        let pred = &path.steps[0].predicates[0];
        assert_eq!(pred.comparison, Some((CmpOp::Eq, Value::Literal("x y]z".into()))));
    }

    #[test]
    fn multiple_predicates_per_step() {
        let path = p("//a[b][c=1]/d");
        assert_eq!(path.steps[0].predicates.len(), 2);
        assert_eq!(path.predicate_count(), 2);
    }

    #[test]
    fn display_roundtrip() {
        for expr in [
            "//Folder/Admin",
            "//Folder[MedActs//RPhys = USER]/Analysis",
            "/a[d = 4]/c",
            "//a[b][c = 1]/d",
            "//x[. = 5]",
            "//a/*/b",
        ] {
            let parsed = p(expr);
            let printed = parsed.to_string();
            assert_eq!(p(&printed), parsed, "roundtrip of {expr} via {printed}");
        }
    }

    #[test]
    fn errors() {
        assert!(parse_path("a/b").is_err(), "relative path");
        assert!(parse_path("/a[").is_err(), "unterminated predicate");
        assert!(parse_path("/a[b=]").is_err(), "missing value");
        assert!(parse_path("/a]").is_err(), "trailing junk");
        assert!(parse_path("//").is_err(), "missing name");
        assert!(parse_path("").is_err(), "empty");
    }
}
