//! Soundness of the containment test (§3.3): whenever the homomorphism
//! check claims `P ⊇ Q`, the *actual node sets* selected on any document
//! must satisfy `matches(Q) ⊆ matches(P)`. (The converse need not hold —
//! the test is sufficient, not complete.)
//!
//! The node sets are computed by the `xsac-core` oracle, so this test
//! also cross-validates two independent implementations of the XPath
//! fragment's semantics.

use proptest::prelude::*;
use xsac_core::oracle::Oracle;
use xsac_core::{Policy, Sign};
use xsac_xml::Document;
use xsac_xpath::containment::{contains, scope_contains};
use xsac_xpath::parse_path;

const TAGS: &[&str] = &["a", "b", "c"];

fn arb_doc() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        proptest::sample::select(&["1", "2"]).prop_map(|v| v.to_string()),
        proptest::sample::select(TAGS).prop_map(|t| format!("<{t}></{t}>")),
    ];
    let inner = leaf.prop_recursive(3, 20, 3, |elem| {
        (proptest::sample::select(TAGS), prop::collection::vec(elem, 0..3))
            .prop_map(|(t, cs)| format!("<{t}>{}</{t}>", cs.concat()))
    });
    (proptest::sample::select(TAGS), prop::collection::vec(inner, 1..4))
        .prop_map(|(t, cs)| format!("<{t}>{}</{t}>", cs.concat()))
}

fn arb_path() -> impl Strategy<Value = String> {
    let step = prop_oneof![
        4 => proptest::sample::select(TAGS).prop_map(|t| t.to_string()),
        1 => Just("*".to_string()),
    ];
    let seg = (proptest::sample::select(&["/", "//"]), step).prop_map(|(a, s)| format!("{a}{s}"));
    let pred = prop_oneof![
        2 => Just(String::new()),
        1 => (proptest::sample::select(TAGS), proptest::sample::select(&["", " = 1", " > 1"]))
            .prop_map(|(t, c)| format!("[{t}{c}]")),
    ];
    (prop::collection::vec(seg, 1..4), pred).prop_map(|(s, p)| format!("{}{p}", s.concat()))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 300, ..Default::default() })]

    #[test]
    fn containment_is_sound(xml in arb_doc(), p in arb_path(), q in arb_path()) {
        let sup = parse_path(&p).unwrap();
        let sub = parse_path(&q).unwrap();
        if !contains(&sup, &sub) {
            return Ok(()); // inconclusive answers claim nothing
        }
        let doc = Document::parse(&xml).unwrap();
        let oracle = Oracle::new(&doc);
        let big = oracle.matches(&sup, "u");
        let small = oracle.matches(&sub, "u");
        prop_assert!(
            small.is_subset(&big),
            "claimed {p} ⊇ {q} but node sets disagree on {xml}"
        );
    }

    #[test]
    fn scope_containment_is_sound(xml in arb_doc(), p in arb_path(), q in arb_path()) {
        let sup = parse_path(&p).unwrap();
        let sub = parse_path(&q).unwrap();
        if !scope_contains(&sup, &sub) {
            return Ok(());
        }
        // Scope containment must imply view containment for single-rule
        // policies of the same sign: granting `sup` shows at least
        // everything granting `sub` shows.
        let doc = Document::parse(&xml).unwrap();
        let oracle = Oracle::new(&doc);
        let mut dict = doc.dict.clone();
        let pol_sup = Policy::parse("u", &[(Sign::Permit, p.as_str())], &mut dict).unwrap();
        let pol_sub = Policy::parse("u", &[(Sign::Permit, q.as_str())], &mut dict).unwrap();
        let granted_sup = oracle.decisions(&pol_sup);
        let granted_sub = oracle.decisions(&pol_sub);
        for (node, g) in granted_sub {
            if g {
                prop_assert_eq!(
                    granted_sup.get(&node),
                    Some(&true),
                    "scope {} ⊇ {} violated at a node of {}",
                    &p, &q, &xml
                );
            }
        }
    }

    #[test]
    fn minimize_never_changes_single_user_views(
        xml in arb_doc(),
        paths in prop::collection::vec(arb_path(), 1..4),
        signs in prop::collection::vec(any::<bool>(), 4),
    ) {
        let doc = Document::parse(&xml).unwrap();
        let rules: Vec<(Sign, &str)> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                (if signs[i % signs.len()] { Sign::Permit } else { Sign::Deny }, p.as_str())
            })
            .collect();
        let mut dict = doc.dict.clone();
        let mut policy = Policy::parse("u", &rules, &mut dict).unwrap();
        let before = xsac_core::oracle::oracle_view_string(&doc, &policy);
        policy.minimize();
        let after = xsac_core::oracle::oracle_view_string(&doc, &policy);
        prop_assert_eq!(before, after, "minimize changed the view for rules {:?}", rules);
    }
}
