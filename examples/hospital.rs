//! The paper's motivating example (§2, Figure 1): a hospital document
//! shared by secretaries, doctors and medical researchers, each seeing a
//! different authorized view of the same encrypted data.
//!
//! ```sh
//! cargo run --release --example hospital
//! ```

use xsac::core::output::reassemble_to_string;
use xsac::crypto::chunk::ChunkLayout;
use xsac::crypto::{IntegrityScheme, TripleDes};
use xsac::datagen::hospital::{hospital_document, physician_name, HospitalConfig};
use xsac::datagen::Profile;
use xsac::soe::{run_session, CostModel, ServerDoc, SessionConfig, Strategy};

fn main() {
    // The publisher generates and protects the document once.
    let doc = hospital_document(&HospitalConfig { folders: 12, ..Default::default() }, 7);
    let key = TripleDes::new(*b"hospital-example-key-24!");
    let server = ServerDoc::prepare(&doc, &key, IntegrityScheme::EcbMht, ChunkLayout::default());
    println!(
        "published: {} folders, {} encoded bytes, {} stored bytes (with digests)\n",
        12,
        server.protected.plain_len,
        server.stored_len()
    );

    // Three subjects evaluate their own policies on the same ciphertext.
    for profile in Profile::figure9() {
        let mut dict = server.dict.clone();
        let policy = profile.policy(&physician_name(0), &mut dict);
        let config = SessionConfig { strategy: Strategy::Tcsbr, cost: CostModel::smartcard() };
        let res = run_session(&server, &key, &policy, None, &config).expect("session");
        let view = reassemble_to_string(&dict, &res.log);
        println!("== {} ==", profile.name());
        println!(
            "  result: {} bytes | simulated smartcard time {:.2}s \
             (comm {:.2}s, decrypt {:.2}s, hash {:.2}s, AC {:.2}s)",
            res.result_bytes,
            res.time.total(),
            res.time.comm_s,
            res.time.decrypt_s,
            res.time.hash_s,
            res.time.ac_s
        );
        println!(
            "  skipped subtrees: {} denied, {} pending; {} readbacks",
            res.stats.skips_denied, res.stats.skips_pending, res.output.readbacks
        );
        let preview: String = view.chars().take(160).collect();
        println!("  view preview: {preview}…\n");
    }
}
