//! One hospital document, many concurrent users: the multi-session
//! serving layer (`xsac_soe::server`) fans Secretary, Doctor and
//! Researcher sessions out over threads, sharing the per-document caches
//! (terminal Merkle leaf hashes, compiled per-role policies).
//!
//! ```sh
//! cargo run --release --example multi_user_server
//! ```

use std::time::Instant;
use xsac::core::output::reassemble_to_string;
use xsac::crypto::chunk::ChunkLayout;
use xsac::crypto::{IntegrityScheme, TripleDes};
use xsac::datagen::hospital::{hospital_document, physician_name, HospitalConfig};
use xsac::datagen::Profile;
use xsac::soe::{DocServer, ServerDoc, SessionSpec};

fn main() {
    // The publisher prepares the document once; the server wraps it with
    // the state every session can share.
    let doc = hospital_document(&HospitalConfig { folders: 12, ..Default::default() }, 7);
    let key = TripleDes::new(*b"hospital-example-key-24!");
    let prepared = ServerDoc::prepare(&doc, &key, IntegrityScheme::EcbMht, ChunkLayout::default());
    let stored = prepared.stored_len();
    let server = DocServer::new(prepared, key);
    println!("published: {stored} stored bytes (ECB-MHT), serving 3 roles\n");

    // One session per role first, to show the per-role views…
    for profile in Profile::figure9() {
        let mut dict = server.doc().dict.clone();
        let policy = profile.policy(&physician_name(0), &mut dict);
        let res = server.serve(&SessionSpec::new(profile.name(), policy)).expect("session");
        let view = reassemble_to_string(&dict, &res.log);
        let preview: String = view.chars().take(120).collect();
        println!("== {} ==", profile.name());
        println!(
            "  result {} bytes | terminal leaf bytes hashed this session: {}",
            res.result_bytes, res.cost.terminal_bytes_hashed
        );
        println!("  view preview: {preview}…\n");
    }

    // …then a mixed concurrent fleet over the now-warm caches: policies
    // are compiled (once per role) and every touched chunk's Merkle
    // leaves are cached, so added sessions cost only their own SOE work.
    let specs: Vec<SessionSpec> = (0..24)
        .map(|i| {
            let profile = Profile::figure9()[i % 3];
            let mut dict = server.doc().dict.clone();
            SessionSpec::new(profile.name(), profile.policy(&physician_name(0), &mut dict))
        })
        .collect();
    for threads in [1usize, 2, 4] {
        let start = Instant::now();
        let results = server.serve_concurrent(&specs, threads);
        let elapsed = start.elapsed().as_secs_f64();
        let rehashed: u64 =
            results.iter().map(|r| r.as_ref().unwrap().cost.terminal_bytes_hashed).sum();
        println!(
            "{} sessions on {threads} thread(s): {:.1} sessions/s, {rehashed} leaf bytes re-hashed",
            results.len(),
            results.len() as f64 / elapsed,
        );
    }
    println!(
        "\nshared state: {} roles compiled, {} chunks warm in the leaf cache",
        server.cached_roles(),
        server.leaf_cache().warmed_chunks()
    );
}
