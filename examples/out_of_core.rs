//! Out-of-core serving: one file-backed document, many subjects, bounded
//! resident memory.
//!
//! The publisher encrypts + digests the hospital document chunk-at-a-time
//! straight to disk (`prepare_to_store` — the ciphertext is never
//! materialized in memory), then a `DocServer` serves differently-
//! privileged sessions through a small resident window. The example
//! prints the metered peak residency against the document size: the
//! serving cost is O(window), however large the document grows.
//!
//!     cargo run --release --example out_of_core

use xsac::crypto::chunk::ChunkLayout;
use xsac::crypto::store::TempPath;
use xsac::crypto::{IntegrityScheme, TripleDes};
use xsac::datagen::hospital::{hospital_document, physician_name, HospitalConfig};
use xsac::datagen::Profile;
use xsac::soe::{DocServer, ServerDoc, SessionSpec};

fn main() {
    let key = TripleDes::new(*b"out-of-core-example-24ab");
    let doc = hospital_document(&HospitalConfig { folders: 60, ..Default::default() }, 7);

    // Publish to disk: a 16 KB resident window over the whole document.
    const WINDOW: usize = 16 * 1024;
    let tmp = TempPath::new("example");
    let prepared = ServerDoc::prepare_to_store(
        &doc,
        &key,
        IntegrityScheme::EcbMht,
        ChunkLayout::default(),
        tmp.path(),
        WINDOW,
    )
    .expect("prepare to store");
    let doc_bytes = prepared.protected.ciphertext_len();
    println!(
        "published {} KB of ciphertext to {} (window: {} KB)\n",
        doc_bytes / 1024,
        tmp.path().display(),
        WINDOW / 1024
    );

    // Serve the three §7 profiles concurrently off the shared file.
    let server = DocServer::new(prepared, key);
    let specs: Vec<SessionSpec> = Profile::figure9()
        .into_iter()
        .map(|p| {
            let mut dict = server.doc().dict.clone();
            SessionSpec::new(p.name(), p.policy(&physician_name(0), &mut dict))
        })
        .collect();
    for (spec, res) in specs.iter().zip(server.serve_concurrent(&specs, 3)) {
        let res = res.expect("session");
        println!(
            "{:<12} delivered {:>6} B of authorized view ({} KB crossed the SOE channel)",
            spec.role,
            res.result_bytes,
            res.cost.bytes_to_soe / 1024
        );
    }

    let peak = server.resident_bytes_peak().expect("file store meters residency");
    println!(
        "\nresident peak: {} KB of {} KB document ({:.1}%) — O(window), not O(document)",
        peak / 1024,
        doc_bytes / 1024,
        100.0 * peak as f64 / doc_bytes as f64
    );
    assert!((peak as usize) < doc_bytes / 2, "residency must stay well under the document size");
}
