//! Parental control over streamed content (one of the paper's motivating
//! applications: "the ever-increasing concern of parents to protect
//! children by controlling and filtering out what they access").
//!
//! A content feed is published encrypted; the child's device holds a SOE
//! with parent-defined rules. Rules are *dynamic*: the parent tightens
//! them without re-encrypting the feed — the whole point of evaluating
//! access control on the client instead of compiling it into the
//! encryption.
//!
//! ```sh
//! cargo run --release --example parental_control
//! ```

use xsac::core::output::reassemble_to_string;
use xsac::core::{Policy, Sign};
use xsac::crypto::chunk::ChunkLayout;
use xsac::crypto::{IntegrityScheme, TripleDes};
use xsac::soe::{run_session, CostModel, ServerDoc, SessionConfig, Strategy};
use xsac::xml::Document;

fn main() {
    let feed = Document::parse(
        "<feed>\
           <show><rating>G</rating><title>Space Gardens</title>\
             <episode><n>1</n><video>g-content-1</video></episode>\
             <episode><n>2</n><video>g-content-2</video></episode></show>\
           <show><rating>PG13</rating><title>City Nights</title>\
             <episode><n>1</n><video>pg13-content</video></episode></show>\
           <show><rating>R</rating><title>Dark Alley</title>\
             <episode><n>1</n><video>r-content</video></episode></show>\
         </feed>",
    )
    .expect("feed");
    let key = TripleDes::new(*b"family-television-key-24");
    let server = ServerDoc::prepare(&feed, &key, IntegrityScheme::EcbMht, ChunkLayout::default());

    // The same ciphertext, two different parental policies — no
    // re-encryption between them.
    let policies: [(&str, Vec<(Sign, &str)>); 2] = [
        ("young child", vec![(Sign::Permit, "//show[rating = G]")]),
        (
            "teenager",
            vec![(Sign::Permit, "//show[rating = G]"), (Sign::Permit, "//show[rating = PG13]")],
        ),
    ];

    for (who, rules) in policies {
        let mut dict = server.dict.clone();
        let policy = Policy::parse("parent", &rules, &mut dict).expect("rules");
        let config = SessionConfig { strategy: Strategy::Tcsbr, cost: CostModel::smartcard() };
        let res = run_session(&server, &key, &policy, None, &config).expect("session");
        println!("== profile: {who} ==");
        println!("{}", reassemble_to_string(&dict, &res.log));
        println!(
            "(denied/pending subtrees skipped without decryption: {}/{})\n",
            res.stats.skips_denied, res.stats.skips_pending
        );
    }

    // Tampering with the feed (e.g. splicing an R-rated block over a G
    // one) is detected before anything is delivered. Flip a ciphertext
    // bit — a swap of two positions can silently no-op when the bytes
    // happen to coincide, which this very feed demonstrates.
    let mut tampered =
        ServerDoc::prepare(&feed, &key, IntegrityScheme::EcbMht, ChunkLayout::default());
    tampered.protected.ciphertext_mut()[8] ^= 0x01;
    let mut dict = tampered.dict.clone();
    let policy = Policy::parse("parent", &[(Sign::Permit, "//feed")], &mut dict).expect("rules");
    let config = SessionConfig { strategy: Strategy::Tcsbr, cost: CostModel::smartcard() };
    match run_session(&tampered, &key, &policy, None, &config) {
        Err(e) => println!("tampered feed rejected: {e}"),
        Ok(_) => unreachable!("tampering must be detected"),
    }
}
