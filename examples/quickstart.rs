//! Quickstart: evaluate an access-control policy on a streaming document.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xsac::core::output::reassemble_to_string;
use xsac::core::{evaluator::Evaluator, Policy, Sign};
use xsac::xml::Document;

fn main() {
    // 1. A document (normally this arrives as an encrypted stream; here
    //    we parse locally to focus on the evaluator).
    let doc = Document::parse(
        "<Folder>\
           <Admin><Name>Ann Martin</Name><Age>71</Age></Admin>\
           <MedActs>\
             <Act><RPhys>house</RPhys><Details>confidential details</Details></Act>\
             <Act><RPhys>wilson</RPhys><Details>other details</Details></Act>\
           </MedActs>\
         </Folder>",
    )
    .expect("well-formed");

    // 2. An access-control policy: a doctor sees the administrative data
    //    and her own acts, but not the details of someone else's acts.
    let mut dict = doc.dict.clone();
    let policy = Policy::parse(
        "house", // the USER variable
        &[
            (Sign::Permit, "//Admin"),
            (Sign::Permit, "//MedActs"),
            (Sign::Deny, "//Act[RPhys != USER]/Details"),
        ],
        &mut dict,
    )
    .expect("rules parse");

    // 3. Stream the document through the evaluator.
    let mut eval = Evaluator::new(&policy, None, Default::default());
    for ev in doc.events() {
        eval.event(&ev);
    }
    let result = eval.finish();

    // 4. The authorized view.
    println!("authorized view for doctor 'house':");
    println!("{}", reassemble_to_string(&dict, &result.log));
    println!();
    println!("evaluator statistics: {}", result.stats.summary());
}
