//! Dissemination over the wire: an untrusted chunk server on a loopback
//! socket, a client enforcing access control locally.
//!
//! The publisher prepares the hospital document once and hands it to a
//! `ChunkServer` — the untrusted party: it holds ciphertext, encrypted
//! digests and the public skip-index material, but no keys. A client
//! connects, pulls the metadata, and runs ordinary sessions through a
//! `RemoteStore`-backed `DocServer`: every ciphertext byte crosses the
//! socket, is verified and decrypted client-side, and the delivered view
//! is exactly what the policy allows — the server never sees it.
//!
//!     cargo run --release --example remote_session

use xsac::crypto::chunk::ChunkLayout;
use xsac::crypto::{IntegrityScheme, TripleDes};
use xsac::datagen::hospital::{hospital_document, physician_name, HospitalConfig};
use xsac::datagen::Profile;
use xsac::net::{connect, ChunkServer, ClientConfig};
use xsac::soe::{DocServer, ServerDoc, SessionSpec};

fn main() {
    // The secure channel of Figure 2: key material shared out of band.
    let key = TripleDes::new(*b"remote-example-key-24-ab");
    let doc = hospital_document(&HospitalConfig { folders: 20, ..Default::default() }, 3);

    // Publisher → untrusted server (which never sees this key).
    let prepared = ServerDoc::prepare(&doc, &key, IntegrityScheme::EcbMht, ChunkLayout::default());
    let doc_bytes = prepared.protected.ciphertext_len();
    let server = ChunkServer::new(prepared, "hospital-2026");
    let handle = server.spawn("127.0.0.1:0").expect("bind loopback");
    println!(
        "chunk server listening on {} ({} KB of ciphertext)\n",
        handle.addr(),
        doc_bytes / 1024
    );

    // Client: connect, then serve the three §7 profiles locally. The
    // session code is the same one the in-process examples use — only
    // the store behind it changed.
    let remote = connect(
        handle.addr(),
        "hospital-2026",
        ClientConfig { window_bytes: 32 * 1024, batch_chunks: 4, ..ClientConfig::default() },
    )
    .expect("connect");
    let client = DocServer::new(remote, key);
    let specs: Vec<SessionSpec> = Profile::figure9()
        .into_iter()
        .map(|p| {
            let mut dict = client.doc().dict.clone();
            SessionSpec::new(p.name(), p.policy(&physician_name(0), &mut dict))
        })
        .collect();
    for (spec, res) in specs.iter().zip(client.serve_batch(&specs)) {
        let res = res.expect("session");
        println!(
            "{:<12} delivered {:>6} B of authorized view \
             ({:>3} KB over the socket, {:>4} B re-fetched)",
            spec.role,
            res.result_bytes,
            res.cost.bytes_to_soe / 1024,
            res.cost.bytes_refetched,
        );
    }

    let stats = client.doc().protected.store.stats();
    println!(
        "\nclient: {} round trips, {} chunks fetched ({} refetched), {} KB on the wire",
        stats.round_trips,
        stats.chunks_fetched,
        stats.chunks_refetched,
        stats.wire_bytes / 1024
    );
    println!(
        "client resilience: {} reconnects, {} chunks retried, {} ms backing off",
        stats.reconnects, stats.retried_chunks, stats.backoff_ms
    );
    let metrics = handle.metrics();
    println!(
        "server: {} connections, {} requests, {} chunks / {} KB served",
        metrics.connections(),
        metrics.requests(),
        metrics.chunks_served(),
        metrics.bytes_served() / 1024
    );
    handle.shutdown().expect("shutdown");
}
