//! The full secure pipeline, stage by stage: publish → encrypt+index →
//! stream through the SOE → query the authorized view — with the cost
//! accounting that drives the paper's evaluation, across the three
//! Table-1 target architectures.
//!
//! ```sh
//! cargo run --release --example secure_pipeline
//! ```

use xsac::core::output::reassemble_to_string;
use xsac::core::{Policy, Sign};
use xsac::crypto::chunk::ChunkLayout;
use xsac::crypto::{IntegrityScheme, TripleDes};
use xsac::datagen::hospital::{hospital_document, HospitalConfig};
use xsac::soe::{lwb_estimate, run_session, CostModel, ServerDoc, SessionConfig, Strategy};
use xsac::xpath::Automaton;

fn main() {
    // --- publisher side -------------------------------------------------
    let doc = hospital_document(&HospitalConfig { folders: 30, ..Default::default() }, 11);
    let raw = xsac::xml::writer::document_to_string(&doc);
    let key = TripleDes::new(*b"pipeline-demo-24-byte-k!");
    let server = ServerDoc::prepare(&doc, &key, IntegrityScheme::EcbMht, ChunkLayout::default());
    println!("[publisher] raw XML:        {:>9} bytes", raw.len());
    println!("[publisher] skip-indexed:   {:>9} bytes (TCSBR)", server.protected.plain_len);
    println!(
        "[publisher] on terminal:    {:>9} bytes (encrypted + digests)\n",
        server.stored_len()
    );

    // --- client side -----------------------------------------------------
    // A researcher-style rule set plus a query over the authorized view.
    let mut dict = server.dict.clone();
    let policy = Policy::parse(
        "researcher",
        &[
            (Sign::Permit, "//Folder[Protocol]//Age"),
            (Sign::Permit, "//Folder[Protocol/Type=G3]//LabResults//G3"),
            (Sign::Deny, "//G3[Cholesterol > 250]"),
        ],
        &mut dict,
    )
    .expect("policy");
    let query = Automaton::parse("//Folder[//Age > 60]", &mut dict).expect("query");

    for (label, cost) in [
        ("smartcard        (0.5 MB/s comm, 0.15 MB/s 3DES)", CostModel::smartcard()),
        ("software+internet(0.1 MB/s comm, 1.2 MB/s 3DES)", CostModel::software_internet()),
        ("software+LAN     (10 MB/s comm, 1.2 MB/s 3DES)", CostModel::software_lan()),
    ] {
        let config = SessionConfig { strategy: Strategy::Tcsbr, cost };
        let res = run_session(&server, &key, &policy, Some(&query), &config).expect("session");
        println!(
            "[{label}]\n    total {:>7.3}s = comm {:.3} + decrypt {:.3} + hash {:.3} + AC {:.3}",
            res.time.total(),
            res.time.comm_s,
            res.time.decrypt_s,
            res.time.hash_s,
            res.time.ac_s
        );
    }

    // Result + baselines under the smartcard model.
    let config = SessionConfig { strategy: Strategy::Tcsbr, cost: CostModel::smartcard() };
    let res = run_session(&server, &key, &policy, Some(&query), &config).expect("session");
    let bf = run_session(
        &server,
        &key,
        &policy,
        Some(&query),
        &SessionConfig { strategy: Strategy::BruteForce, cost: CostModel::smartcard() },
    )
    .expect("bf");
    let lwb = lwb_estimate(&doc, &policy, CostModel::smartcard());
    println!(
        "\n[baselines] brute-force {:.3}s vs TCSBR {:.3}s vs LWB {:.3}s",
        bf.time.total(),
        res.time.total(),
        lwb.time.total()
    );
    println!(
        "[transfer]  brute-force {} bytes vs TCSBR {} bytes into the SOE",
        bf.cost.bytes_to_soe, res.cost.bytes_to_soe
    );
    let view = reassemble_to_string(&dict, &res.log);
    let preview: String = view.chars().take(240).collect();
    println!("\nquery result preview:\n{preview}…");
}
