//! The telemetry surface end to end: a multi-tenant server answering the
//! wire-level `Stats` and `Admin` frames, a client stamping its
//! session-phase profile back with `Report`.
//!
//! Two hospital documents go behind one socket. Clients run the §7 role
//! sessions against each tenant — decrypting, verifying and evaluating
//! locally, as the architecture demands — then push their per-phase wall
//! times to the server so the service-wide roll-up sees the whole
//! pipeline, not just the chunk-serving half it can observe itself.
//! A final `Stats` round trip prints the snapshot as Prometheus text
//! exposition (or JSON with `--json`), and the admin surface lists and
//! closes tenants.
//!
//!     cargo run --release --example service_stats [-- --json]

use std::sync::Arc;
use xsac::crypto::chunk::ChunkLayout;
use xsac::crypto::{IntegrityScheme, TripleDes};
use xsac::datagen::hospital::{hospital_document, physician_name, HospitalConfig};
use xsac::datagen::Profile;
use xsac::net::{
    admin_close_doc, admin_list_docs, connect, fetch_stats, render_json, render_text, ChunkServer,
    ClientConfig, DocRegistry, ServerConfig,
};
use xsac::obs::PhaseProfile;
use xsac::soe::{DocServer, ServerDoc, SessionSpec};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let key = TripleDes::new(*b"stats-example-key-24-byt");

    // Two tenants share one registry (and one residency budget): one
    // resident, one lazy file-backed — the kind the admin surface can
    // actually close (and the next Hello transparently reopens).
    let registry = Arc::new(DocRegistry::new(1 << 18));
    let doc = hospital_document(&HospitalConfig { folders: 16, ..Default::default() }, 3);
    registry.insert(
        "hospital-2026",
        ServerDoc::prepare(&doc, &key, IntegrityScheme::EcbMht, ChunkLayout::default()),
    );
    let archive = hospital_document(&HospitalConfig { folders: 6, ..Default::default() }, 11);
    let tmp = xsac::crypto::store::TempPath::new("service-stats-archive");
    let file = ServerDoc::prepare_to_store(
        &archive,
        &key,
        IntegrityScheme::EcbMht,
        ChunkLayout::default(),
        tmp.path(),
        1 << 16,
    )
    .expect("prepare archive to file");
    registry.insert_file("archive-2025", file.meta(), tmp.path());
    let server = ChunkServer::with_registry(Arc::clone(&registry))
        .with_config(ServerConfig { admin: true, ..ServerConfig::default() });
    let handle = server.spawn("127.0.0.1:0").expect("bind loopback");
    let addr = handle.addr();
    if !json {
        println!("stats-enabled chunk server on {addr} (admin surface on)\n");
    }

    // Run the Figure-9 roles against both tenants and report each
    // client's phase profile back — the only way decrypt/verify/evaluate
    // time (spent inside the client SOE) can reach the server's metrics.
    for doc_id in ["hospital-2026", "archive-2025"] {
        let remote = connect(addr, doc_id, ClientConfig::default()).expect("connect");
        let client = DocServer::new(remote, key.clone());
        let mut phases = PhaseProfile::new();
        for profile in Profile::figure9() {
            let mut dict = client.doc().dict.clone();
            let spec =
                SessionSpec::new(profile.name(), profile.policy(&physician_name(0), &mut dict));
            let res = client.serve(&spec).expect("session");
            phases.merge(&res.phases);
        }
        client.doc().protected.store.report_profile(&phases).expect("report");
    }

    // The admin surface: list what the service is routing, close a
    // tenant, and note that its metrics row survives the close.
    let cfg = ClientConfig::default();
    if !json {
        for d in admin_list_docs(addr, &cfg).expect("list docs") {
            println!("admin: doc {:?} open={} lazy={}", d.doc_id, d.open, d.lazy);
        }
        let closed = admin_close_doc(addr, "archive-2025", &cfg).expect("close doc");
        println!("admin: closed archive-2025 = {closed}\n");
    }

    // One read-only Stats round trip, rendered for scraping.
    let snap = fetch_stats(addr, &cfg).expect("fetch stats");
    if json {
        println!("{}", render_json(&snap));
    } else {
        print!("{}", render_text(&snap));
    }
    handle.shutdown().expect("shutdown");
}
