//! # xsac — client-based access control management for XML documents
//!
//! A complete Rust reproduction of Bouganim, Dang Ngoc & Pucheral,
//! *Client-Based Access Control Management for XML documents*
//! (VLDB 2004 / INRIA RR-5282): streaming evaluation of XPath-based
//! access-control policies over encrypted XML inside a memory-constrained
//! Secure Operating Environment (SOE), with a skip index converging to the
//! authorized parts of the document, pending-predicate management, and
//! random integrity checking.
//!
//! This crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`xml`] | `xsac-xml` | events, parser, tree, serializer, statistics |
//! | [`xpath`] | `xsac-xpath` | XP{[],*,//} AST, parser, access-rule automata |
//! | [`core`] | `xsac-core` | the streaming evaluator, conflict resolution, pending predicates, oracle |
//! | [`index`] | `xsac-index` | the Skip index (TCSBR) and the Figure-8 encodings |
//! | [`crypto`] | `xsac-crypto` | DES/3DES, SHA-1, position-XOR-ECB, Merkle integrity |
//! | [`soe`] | `xsac-soe` | Table-1 cost model, server prep, SOE sessions, baselines |
//! | [`net`] | `xsac-net` | dissemination wire protocol, chunk server, remote client store |
//! | [`obs`] | `xsac-obs` | phase-timed span clock, log-bucketed latency histograms |
//! | [`datagen`] | `xsac-datagen` | the four Table-2 datasets and the paper's policies |
//!
//! ## Quickstart
//!
//! ```
//! use xsac::core::{Policy, Sign, evaluator::Evaluator, output::reassemble_to_string};
//! use xsac::xml::Document;
//!
//! // A tiny medical folder…
//! let doc = Document::parse(
//!     "<Folder><Admin><Name>Ann</Name></Admin><MedActs><Act>x</Act></MedActs></Folder>",
//! ).unwrap();
//!
//! // …a secretary's policy (only administrative data)…
//! let mut dict = doc.dict.clone();
//! let policy = Policy::parse("sec", &[(Sign::Permit, "//Admin")], &mut dict).unwrap();
//!
//! // …streamed through the evaluator:
//! let mut eval = Evaluator::new(&policy, None, Default::default());
//! for ev in doc.events() {
//!     eval.event(&ev);
//! }
//! assert_eq!(
//!     reassemble_to_string(&dict, &eval.finish().log),
//!     "<Folder><Admin><Name>Ann</Name></Admin></Folder>"
//! );
//! ```
//!
//! For the full encrypted pipeline (skip index + integrity + cost
//! accounting) see [`soe::run_session`] and the `examples/` directory.

pub use xsac_core as core;
pub use xsac_crypto as crypto;
pub use xsac_datagen as datagen;
pub use xsac_index as index;
pub use xsac_net as net;
pub use xsac_obs as obs;
pub use xsac_soe as soe;
pub use xsac_xml as xml;
pub use xsac_xpath as xpath;
