//! End-to-end integration: publisher → encrypted terminal store → SOE
//! session → authorized view, across strategies, schemes and profiles.
//!
//! Documents are kept small: these tests run in debug mode where the
//! from-scratch 3DES costs real time.

use xsac::core::oracle::{oracle_query_string, oracle_view_string};
use xsac::core::output::reassemble_to_string;
use xsac::core::{Policy, Sign};
use xsac::crypto::chunk::ChunkLayout;
use xsac::crypto::{IntegrityScheme, TripleDes};
use xsac::datagen::hospital::{hospital_document, physician_name, HospitalConfig};
use xsac::datagen::Profile;
use xsac::soe::{
    brute_force_session, lwb_estimate, run_session, CostModel, ServerDoc, SessionConfig,
    SessionError, Strategy,
};
use xsac::xpath::{parse_path, Automaton};

fn key() -> TripleDes {
    TripleDes::new(*b"integration-test-key-24!")
}

fn small_hospital() -> xsac::xml::Document {
    hospital_document(&HospitalConfig { folders: 4, ..Default::default() }, 99)
}

fn layout() -> ChunkLayout {
    ChunkLayout { chunk_size: 512, fragment_size: 64 }
}

#[test]
fn all_profiles_all_schemes_match_oracle() {
    let doc = small_hospital();
    let user = physician_name(0);
    for scheme in IntegrityScheme::ALL {
        let server = ServerDoc::prepare(&doc, &key(), scheme, layout());
        for profile in Profile::figure9() {
            let mut dict = server.dict.clone();
            let policy = profile.policy(&user, &mut dict);
            let expected = oracle_view_string(&doc, &policy);
            for strategy in [Strategy::Tcsbr, Strategy::BruteForce] {
                let config = SessionConfig { strategy, cost: CostModel::smartcard() };
                let res = run_session(&server, &key(), &policy, None, &config)
                    .unwrap_or_else(|e| panic!("{scheme:?}/{strategy:?}: {e}"));
                let got = reassemble_to_string(&dict, &res.log);
                assert_eq!(
                    got,
                    expected,
                    "profile {} scheme {:?} strategy {:?}",
                    profile.name(),
                    scheme,
                    strategy
                );
            }
        }
    }
}

#[test]
fn query_session_matches_oracle() {
    let doc = small_hospital();
    let server = ServerDoc::prepare(&doc, &key(), IntegrityScheme::EcbMht, layout());
    let mut dict = server.dict.clone();
    let policy = xsac::datagen::secretary_policy("sec", &mut dict);
    for v in [0, 40, 70, 101] {
        let q_text = xsac::datagen::profiles::figure10_query(v);
        let q = Automaton::parse(&q_text, &mut dict).expect("query");
        let expected = oracle_query_string(&doc, &policy, &parse_path(&q_text).unwrap());
        let res = run_session(&server, &key(), &policy, Some(&q), &SessionConfig::default())
            .expect("session");
        assert_eq!(reassemble_to_string(&dict, &res.log), expected, "v={v}");
    }
}

#[test]
fn tcsbr_never_reads_more_than_brute_force() {
    let doc = small_hospital();
    let server = ServerDoc::prepare(&doc, &key(), IntegrityScheme::Ecb, layout());
    for profile in Profile::figure9() {
        let mut dict = server.dict.clone();
        let policy = profile.policy(&physician_name(0), &mut dict);
        let t = run_session(&server, &key(), &policy, None, &SessionConfig::default()).unwrap();
        let b =
            brute_force_session(&server, &key(), &policy, None, CostModel::smartcard()).unwrap();
        assert!(
            t.cost.bytes_decrypted <= b.cost.bytes_decrypted,
            "{}: {} > {}",
            profile.name(),
            t.cost.bytes_decrypted,
            b.cost.bytes_decrypted
        );
        assert!(t.time.total() <= b.time.total() * 1.001);
    }
}

#[test]
fn lwb_is_a_lower_bound_for_every_profile() {
    let doc = small_hospital();
    let server = ServerDoc::prepare(&doc, &key(), IntegrityScheme::Ecb, layout());
    for profile in Profile::figure9() {
        let mut dict = server.dict.clone();
        let policy = profile.policy(&physician_name(0), &mut dict);
        let t = run_session(&server, &key(), &policy, None, &SessionConfig::default()).unwrap();
        let lwb = lwb_estimate(&doc, &policy, CostModel::smartcard());
        assert!(
            lwb.time.total() <= t.time.total() * 1.02,
            "{}: LWB {} vs TCSBR {}",
            profile.name(),
            lwb.time.total(),
            t.time.total()
        );
    }
}

#[test]
fn every_scheme_but_ecb_detects_tampering() {
    let doc = small_hospital();
    for scheme in [IntegrityScheme::CbcSha, IntegrityScheme::CbcShac, IntegrityScheme::EcbMht] {
        let mut server = ServerDoc::prepare(&doc, &key(), scheme, layout());
        let n = server.protected.ciphertext().len();
        server.protected.ciphertext_mut()[n / 3] ^= 0x04;
        let mut dict = server.dict.clone();
        let policy = Policy::parse("u", &[(Sign::Permit, "//Folder")], &mut dict).unwrap();
        let res = run_session(&server, &key(), &policy, None, &SessionConfig::default());
        assert!(matches!(res, Err(SessionError::Integrity(_))), "{scheme:?} must detect the flip");
    }
}

#[test]
fn block_swap_attack_rejected() {
    // §6: "substituting some blocks of folders X and Y to mislead the
    // access control manager" — swap two ciphertext blocks.
    let doc = small_hospital();
    let mut server = ServerDoc::prepare(&doc, &key(), IntegrityScheme::EcbMht, layout());
    let n = server.protected.ciphertext().len();
    let (a, b) = (n / 4 / 8 * 8, n / 2 / 8 * 8);
    for i in 0..8 {
        server.protected.ciphertext_mut().swap(a + i, b + i);
    }
    let mut dict = server.dict.clone();
    let policy = Policy::parse("u", &[(Sign::Permit, "//Folder")], &mut dict).unwrap();
    let res = run_session(&server, &key(), &policy, None, &SessionConfig::default());
    assert!(matches!(res, Err(SessionError::Integrity(_))));
}

#[test]
fn digest_table_tampering_rejected() {
    let doc = small_hospital();
    let mut server = ServerDoc::prepare(&doc, &key(), IntegrityScheme::EcbMht, layout());
    server.protected.digests[0][0] ^= 1;
    let mut dict = server.dict.clone();
    let policy = Policy::parse("u", &[(Sign::Permit, "//Folder")], &mut dict).unwrap();
    let res = run_session(&server, &key(), &policy, None, &SessionConfig::default());
    assert!(matches!(res, Err(SessionError::Integrity(_))));
}

#[test]
fn policy_minimization_preserves_views() {
    let doc = small_hospital();
    // Same-signed containment with no opposite rules: minimized.
    let mut dict = doc.dict.clone();
    let mut policy =
        Policy::parse("u", &[(Sign::Permit, "//Admin"), (Sign::Permit, "//Admin/SSN")], &mut dict)
            .unwrap();
    let before = oracle_view_string(&doc, &policy);
    let removed = policy.minimize();
    assert_eq!(removed, 1, "the contained rule is dropped");
    assert_eq!(oracle_view_string(&doc, &policy), before);

    // An opposite-signed rule makes the (sufficient, conservative)
    // condition of §3.3 hold back — nothing is removed and the view is
    // untouched either way.
    let mut policy = Policy::parse(
        "u",
        &[(Sign::Permit, "//Admin"), (Sign::Permit, "//Admin/SSN"), (Sign::Deny, "//MedActs")],
        &mut dict,
    )
    .unwrap();
    let before = oracle_view_string(&doc, &policy);
    assert_eq!(policy.minimize(), 0, "conservative in the presence of denials");
    assert_eq!(oracle_view_string(&doc, &policy), before);
}

#[test]
fn dynamic_policies_same_ciphertext() {
    // The paper's core motivation: rules change without re-encryption.
    let doc = small_hospital();
    let server = ServerDoc::prepare(&doc, &key(), IntegrityScheme::EcbMht, layout());
    let views: Vec<String> = [
        vec![(Sign::Permit, "//Admin")],
        vec![(Sign::Permit, "//Admin"), (Sign::Deny, "//SSN")],
        vec![(Sign::Permit, "//Folder"), (Sign::Deny, "//Admin")],
    ]
    .into_iter()
    .map(|rules| {
        let mut dict = server.dict.clone();
        let policy = Policy::parse("u", &rules, &mut dict).unwrap();
        let res = run_session(&server, &key(), &policy, None, &SessionConfig::default()).unwrap();
        reassemble_to_string(&dict, &res.log)
    })
    .collect();
    assert_ne!(views[0], views[1]);
    assert_ne!(views[1], views[2]);
    assert!(views[1].contains("<Fname>") && !views[1].contains("<SSN>"));
}
