//! Determinism and metering of the multi-session serving layer
//! (`xsac_soe::server`): N concurrent sessions over one `DocServer` —
//! mixed roles, mixed strategies, both bench integrity schemes — must
//! deliver exactly what the same sessions deliver when run sequentially
//! *without* any shared cache, and the cross-session leaf cache must obey
//! its first-toucher metering contract.

use xsac::crypto::chunk::ChunkLayout;
use xsac::crypto::{IntegrityScheme, TripleDes};
use xsac::datagen::hospital::{hospital_document, physician_name, HospitalConfig};
use xsac::datagen::Profile;
use xsac::soe::{run_session, DocServer, ServerDoc, SessionSpec, Strategy};

fn key() -> TripleDes {
    TripleDes::new(*b"multi-session-demo-key!!")
}

fn doc_server(scheme: IntegrityScheme) -> DocServer {
    let doc = hospital_document(&HospitalConfig { folders: 5, ..Default::default() }, 7);
    let prepared = ServerDoc::prepare(
        &doc,
        &key(),
        scheme,
        ChunkLayout { chunk_size: 1024, fragment_size: 128 },
    );
    DocServer::new(prepared, key())
}

/// Mixed workload: the three hospital profiles, alternating TCSBR and
/// brute force, several sessions per role.
fn workload(server: &DocServer) -> Vec<SessionSpec> {
    let mut specs = Vec::new();
    for round in 0..2 {
        for profile in Profile::figure9() {
            let mut dict = server.doc().dict.clone();
            let policy = profile.policy(&physician_name(0), &mut dict);
            let strategy =
                if (round + specs.len()) % 2 == 0 { Strategy::Tcsbr } else { Strategy::BruteForce };
            specs.push(SessionSpec::new(profile.name(), policy).strategy(strategy));
        }
    }
    specs
}

#[test]
fn concurrent_sessions_match_unshared_sequential_runs() {
    for scheme in [IntegrityScheme::Ecb, IntegrityScheme::EcbMht] {
        let server = doc_server(scheme);
        let specs = workload(&server);

        // Reference: each session alone, private caches, fresh compile.
        let reference: Vec<_> = specs
            .iter()
            .map(|s| {
                run_session(server.doc(), &key(), &s.policy, s.query.as_ref(), &s.config)
                    .expect("reference session")
            })
            .collect();

        let concurrent = server.serve_concurrent(&specs, 4);
        assert_eq!(concurrent.len(), reference.len());
        for (i, (got, want)) in concurrent.iter().zip(&reference).enumerate() {
            let got = got.as_ref().expect("concurrent session");
            // Byte-identical delivery logs (items, anchors, payloads).
            assert_eq!(got.log, want.log, "{scheme:?} spec {i}: delivery log diverged");
            assert_eq!(got.output, want.output, "{scheme:?} spec {i}");
            assert_eq!(got.stats, want.stats, "{scheme:?} spec {i}");
            // Every SOE-side cost is identical; only terminal hashing is
            // redistributed by the shared leaf cache (first toucher pays),
            // so it is asserted separately below.
            assert_eq!(got.cost.bytes_to_soe, want.cost.bytes_to_soe, "{scheme:?} spec {i}");
            assert_eq!(got.cost.bytes_decrypted, want.cost.bytes_decrypted, "{scheme:?} spec {i}");
            assert_eq!(got.cost.bytes_hashed, want.cost.bytes_hashed, "{scheme:?} spec {i}");
            assert_eq!(
                got.cost.digests_decrypted, want.cost.digests_decrypted,
                "{scheme:?} spec {i}"
            );
            assert_eq!(got.cost.reads, want.cost.reads, "{scheme:?} spec {i}");
            assert_eq!(got.result_bytes, want.result_bytes, "{scheme:?} spec {i}");
        }

        // And the concurrent run agrees with a sequential shared-cache
        // batch on a *fresh* server (same warm/cold distribution is not
        // guaranteed, so again: logs only).
        let server2 = doc_server(scheme);
        let batch = server2.serve_batch(&specs);
        for (i, (a, b)) in concurrent.iter().zip(&batch).enumerate() {
            assert_eq!(
                a.as_ref().unwrap().log,
                b.as_ref().unwrap().log,
                "{scheme:?} spec {i}: concurrent vs batch"
            );
        }
    }
}

#[test]
fn warm_cache_metering_sums_to_at_most_one_document() {
    // First-toucher-pays semantics: across N sessions sharing one
    // `DocServer`, total terminal leaf hashing is bounded by one document
    // length — however the sessions interleave — and a warm session
    // meters zero.
    let server = doc_server(IntegrityScheme::EcbMht);
    let specs = workload(&server);
    let results = server.serve_concurrent(&specs, 4);
    let ciphertext_len = server.doc().protected.ciphertext().len() as u64;
    let total: u64 = results.iter().map(|r| r.as_ref().unwrap().cost.terminal_bytes_hashed).sum();
    assert!(total > 0, "somebody must hash the touched chunks");
    assert!(
        total <= ciphertext_len,
        "cross-session terminal hashing {total} exceeds one document length {ciphertext_len}"
    );

    // A session started after the fleet finds every touched chunk warm.
    let mut dict = server.doc().dict.clone();
    let policy = Profile::Secretary.policy("sec", &mut dict);
    let warm = server.serve(&SessionSpec::new("Secretary", policy)).expect("warm session");
    assert_eq!(
        warm.cost.terminal_bytes_hashed, 0,
        "warm second session must re-hash zero MHT leaf bytes"
    );
}
