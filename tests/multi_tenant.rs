//! Multi-tenant differential harness: one `ChunkServer` process serves
//! many hospital documents through a `DocRegistry`, under a **global**
//! residency budget smaller than any single document — and every
//! session must still be byte-identical to its single-document
//! in-memory oracle.
//!
//! The acceptance shape (ISSUE 7): ≥ 8 distinct documents, ≥ 16
//! concurrent client sessions with interleaved doc-ids, lazy
//! open/close of file-backed tenants under LRU pressure, and the whole
//! thing invisible at the session layer — the only observable
//! difference is the service snapshot's accounting. The chaos half
//! re-runs the story against registry closes landing mid-session and a
//! killed-and-restarted server resuming *all* tenants.

use std::sync::Arc;
use xsac::core::oracle::oracle_view_string;
use xsac::core::output::reassemble_to_string;
use xsac::crypto::chunk::ChunkLayout;
use xsac::crypto::store::TempPath;
use xsac::crypto::{ChunkStore, IntegrityScheme, TripleDes};
use xsac::datagen::hospital::{hospital_document, physician_name, HospitalConfig};
use xsac::datagen::profiles::View;
use xsac::net::{
    connect, ChunkServer, ClientConfig, DocRegistry, FaultPlan, FaultTransport, RetryConfig,
};
use xsac::soe::{run_session, DocMeta, ServerDoc, SessionConfig};
use xsac::xml::Document;

const N_DOCS: usize = 8;
const N_THREADS: usize = 16;
/// The global pool budget: 8 chunks of 256 bytes — far below any one
/// hospital document (asserted), let alone eight of them.
const BUDGET: usize = 2048;
const CHUNK: usize = 256;

fn key() -> TripleDes {
    TripleDes::new(*b"multi-tenant-key-24-abcd")
}

fn tiny_layout() -> ChunkLayout {
    ChunkLayout { chunk_size: CHUNK, fragment_size: 32 }
}

fn scheme_for(i: usize) -> IntegrityScheme {
    if i.is_multiple_of(2) {
        IntegrityScheme::EcbMht
    } else {
        IntegrityScheme::Ecb
    }
}

fn tenant_doc(i: usize) -> Document {
    hospital_document(&HospitalConfig { folders: 1, ..Default::default() }, 100 + i as u64)
}

fn doc_id(i: usize) -> String {
    format!("hospital-{i}")
}

/// A client that exercises the server hard (one-chunk client window, no
/// batching) and retries fast enough for tests.
fn chatty_client() -> ClientConfig {
    ClientConfig {
        window_bytes: 1,
        batch_chunks: 1,
        retry: RetryConfig {
            max_retries: 6,
            backoff_base: std::time::Duration::from_millis(2),
            backoff_max: std::time::Duration::from_millis(50),
            jitter_seed: 42,
        },
        ..ClientConfig::default()
    }
}

/// Every tenant three ways: the in-memory oracle, the on-disk
/// ciphertext (kept alive by the returned `TempPath`s), and the
/// registration material for `insert_file`.
struct Tenants {
    oracles: Vec<ServerDoc>,
    metas: Vec<DocMeta>,
    tmps: Vec<TempPath>,
}

fn build_tenants(n: usize) -> Tenants {
    let mut oracles = Vec::new();
    let mut metas = Vec::new();
    let mut tmps = Vec::new();
    for i in 0..n {
        let doc = tenant_doc(i);
        let oracle = ServerDoc::prepare(&doc, &key(), scheme_for(i), tiny_layout());
        assert!(
            oracle.protected.ciphertext_len() > BUDGET,
            "tenant {i} must be larger than the global budget: {} vs {BUDGET}",
            oracle.protected.ciphertext_len()
        );
        let tmp = TempPath::new("multi-tenant");
        let file = ServerDoc::prepare_to_store(
            &doc,
            &key(),
            scheme_for(i),
            tiny_layout(),
            tmp.path(),
            1024,
        )
        .expect("prepare_to_store");
        metas.push(file.meta());
        oracles.push(oracle);
        tmps.push(tmp);
    }
    Tenants { oracles, metas, tmps }
}

fn registry_over(tenants: &Tenants, max_open: usize) -> Arc<DocRegistry> {
    let registry = Arc::new(DocRegistry::new(BUDGET).with_max_open_docs(max_open));
    for (i, (meta, tmp)) in tenants.metas.iter().zip(&tenants.tmps).enumerate() {
        registry.insert_file(doc_id(i), meta.clone(), tmp.path());
    }
    registry
}

/// Runs one view session against `remote` and asserts it is
/// byte-identical to the in-memory oracle (log, cost, output, stats)
/// and to the DOM oracle.
fn assert_session_matches_oracle(
    remote: &ServerDoc<xsac::net::RemoteStore>,
    oracle: &ServerDoc,
    source: &Document,
    view: View,
    label: &str,
) {
    let mut dict = oracle.dict.clone();
    let policy = view.policy(&mut dict, &physician_name(0), &physician_name(1));
    let expected = oracle_view_string(source, &policy);
    let config = SessionConfig::default();
    let a = run_session(oracle, &key(), &policy, None, &config).expect("oracle session");
    let b = run_session(remote, &key(), &policy, None, &config).expect("remote session");
    assert_eq!(a.log, b.log, "{label}: delivery log diverged");
    assert_eq!(a.cost, b.cost, "{label}: AccessCost diverged");
    assert_eq!(a.output, b.output, "{label}: output diverged");
    assert_eq!(a.stats, b.stats, "{label}: session stats diverged");
    assert_eq!(reassemble_to_string(&dict, &b.log), expected, "{label}: view != DOM oracle");
}

/// The acceptance test: 8 file-backed tenants, 16 concurrent sessions
/// with interleaved doc-ids, an open cap of 4 forcing close/reopen
/// churn, and a pool budget smaller than any single document.
#[test]
fn sixteen_sessions_eight_tenants_one_global_budget() {
    let tenants = build_tenants(N_DOCS);
    let registry = registry_over(&tenants, 4);
    let handle =
        ChunkServer::with_registry(Arc::clone(&registry)).spawn("127.0.0.1:0").expect("spawn");

    std::thread::scope(|scope| {
        for t in 0..N_THREADS {
            let tenants = &tenants;
            let addr = handle.addr();
            scope.spawn(move || {
                // Interleaved tenants: each thread visits two documents,
                // phase-shifted so every tenant sees traffic from several
                // threads at overlapping times.
                for (k, i) in [t % N_DOCS, (t + 3) % N_DOCS].into_iter().enumerate() {
                    let config = if t % 2 == 0 { ClientConfig::default() } else { chatty_client() };
                    let remote = connect(addr, &doc_id(i), config).expect("connect");
                    let view = View::ALL[(t + k) % View::ALL.len()];
                    let label = format!("thread {t} session {k} tenant {i} {}", view.name());
                    assert_session_matches_oracle(
                        &remote,
                        &tenants.oracles[i],
                        &tenant_doc(i),
                        view,
                        &label,
                    );
                }
            });
        }
    });

    let snap = handle.service_snapshot();
    assert_eq!(snap.registry.docs.len(), N_DOCS);
    assert_eq!(snap.registry.unknown_doc_rejections, 0);
    assert!(
        snap.registry.resident_bytes_peak <= (BUDGET + CHUNK) as u64,
        "global residency budget violated: peak {} over budget {BUDGET} (+1 chunk)",
        snap.registry.resident_bytes_peak
    );
    assert!(snap.registry.doc_opens >= N_DOCS as u64, "every tenant must have opened: {snap:?}");
    assert!(
        snap.registry.doc_closes >= 1,
        "an open cap of 4 under 8 tenants must close documents: {snap:?}"
    );
    assert!(snap.registry.pool_evictions > 0, "a tight budget must evict: {snap:?}");
    for row in &snap.registry.docs {
        assert!(row.lazy, "{}: all tenants here are file-backed", row.doc_id);
        assert!(row.chunks_served > 0, "{} was never served: {row:?}", row.doc_id);
    }
    let per_doc: u64 = snap.registry.docs.iter().map(|r| r.chunks_served).sum();
    assert_eq!(per_doc, snap.chunks_served, "per-tenant rows must sum to the service total");
    assert!(snap.connections >= N_THREADS as u64 * 2);
    handle.shutdown().expect("shutdown");
}

/// A registry close landing mid-session is invisible to the session: the
/// connection keeps its `Arc` to the served document, the close only
/// purges pooled residency, and the next `Hello` reopens the tenant.
#[test]
fn mid_session_registry_close_is_invisible() {
    let tenants = build_tenants(2);
    let registry = registry_over(&tenants, 2);
    let handle =
        ChunkServer::with_registry(Arc::clone(&registry)).spawn("127.0.0.1:0").expect("spawn");

    // One-chunk client window: the session below re-reads through the
    // server continuously, so the close lands between server reads.
    let remote = connect(handle.addr(), &doc_id(0), chatty_client()).expect("connect");
    let want = tenants.oracles[0].protected.ciphertext().to_vec();
    let half = want.len() / 2;
    let mut got = vec![0u8; want.len()];
    remote.protected.store.read_at(0, &mut got[..half]).expect("first half");
    // The admin path evicts the tenant cold, mid-session.
    assert!(registry.close(&doc_id(0)), "tenant 0 must have been open to close");
    remote.protected.store.read_at(half, &mut got[half..]).expect("second half");
    assert_eq!(got, want, "bytes diverged across a mid-session registry close");

    // A full session over the closed tenant reopens it transparently.
    let remote2 = connect(handle.addr(), &doc_id(0), ClientConfig::default()).expect("reconnect");
    assert_session_matches_oracle(
        &remote2,
        &tenants.oracles[0],
        &tenant_doc(0),
        View::S,
        "post-close session",
    );

    let snap = handle.service_snapshot();
    let row = snap.registry.docs.iter().find(|r| r.doc_id == doc_id(0)).expect("row");
    assert!(row.closes >= 1 && row.opens >= 2, "close + reopen must be counted: {row:?}");
    assert!(snap.registry.pool_purged_chunks > 0, "the close must purge pooled chunks");
    handle.shutdown().expect("shutdown");
}

/// The server process is killed mid-session and restarted over the same
/// ciphertext files (fresh registry, fresh port); every tenant's
/// session rides the reconnect machinery and completes byte-identical
/// to its oracle.
#[test]
fn killed_and_restarted_server_resumes_all_tenants() {
    let tenants = build_tenants(3);
    let registry_a = registry_over(&tenants, 3);
    let handle_a = ChunkServer::with_registry(registry_a).spawn("127.0.0.1:0").expect("spawn a");
    let proxy = Arc::new(FaultTransport::spawn(handle_a.addr()).expect("proxy"));
    // Each initial connection trickles (2 ms per response frame) so the
    // assassin reliably lands its kill mid-session; replacements (empty
    // plan queue) run at full speed.
    for _ in 0..3 {
        proxy.push_plan(FaultPlan::delayed(std::time::Duration::from_millis(2)));
    }

    // The assassin: once the first server has demonstrably served part
    // of the workload, kill it and bring up a replacement registry over
    // the *same* files on a fresh port, then retarget the proxy.
    let assassin = std::thread::spawn({
        let proxy = Arc::clone(&proxy);
        let registry_b = registry_over(&tenants, 3);
        move || {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while handle_a.metrics().chunks_served() < 6 {
                assert!(std::time::Instant::now() < deadline, "workload never started");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            handle_a.shutdown().expect("kill server a");
            let handle_b =
                ChunkServer::with_registry(registry_b).spawn("127.0.0.1:0").expect("spawn b");
            proxy.set_backend(handle_b.addr());
            handle_b
        }
    });

    std::thread::scope(|scope| {
        for i in 0..3 {
            let tenants = &tenants;
            let proxy = &proxy;
            scope.spawn(move || {
                let mut config = chatty_client();
                // Generous budget: the session must outlive the
                // kill → respawn → retarget window.
                config.retry.max_retries = 10;
                let remote = connect(proxy.addr(), &doc_id(i), config).expect("connect");
                assert_session_matches_oracle(
                    &remote,
                    &tenants.oracles[i],
                    &tenant_doc(i),
                    View::S,
                    &format!("tenant {i} across restart"),
                );
                remote.protected.store.stats()
            });
        }
    });

    let handle_b = assassin.join().expect("assassin thread");
    let snap = handle_b.service_snapshot();
    // The replacement registry served real traffic for the resumed
    // tenants (the kill landed mid-workload, so at least one session
    // finished on server B).
    assert!(snap.chunks_served > 0, "server B must have resumed tenants: {snap:?}");
    assert!(
        snap.registry.resident_bytes_peak <= (BUDGET + CHUNK) as u64,
        "the restarted registry keeps the same global budget"
    );
    Arc::try_unwrap(proxy).ok().expect("assassin joined; sole owner").shutdown();
    handle_b.shutdown().expect("shutdown b");
}

/// Randomized multi-tenant workload against the residency bound: K
/// file-backed tenants, a budget far below their combined size, random
/// interleaved chunk reads from several threads — the pool's peak may
/// never exceed budget + one chunk, and the close/reopen churn is
/// visible in the snapshot.
#[test]
fn randomized_workload_respects_global_residency_bound() {
    let tenants = build_tenants(6);
    let total: usize = tenants.oracles.iter().map(|o| o.protected.ciphertext_len()).sum();
    assert!(total > BUDGET * 10, "the workload must dwarf the budget: {total} vs {BUDGET}");
    let registry = registry_over(&tenants, 2);
    let handle =
        ChunkServer::with_registry(Arc::clone(&registry)).spawn("127.0.0.1:0").expect("spawn");

    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let tenants = &tenants;
            let addr = handle.addr();
            scope.spawn(move || {
                // Deterministic xorshift per thread: reproducible chaos.
                let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ (t + 1);
                let mut rng = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                let mut remotes: Vec<Option<ServerDoc<xsac::net::RemoteStore>>> =
                    (0..tenants.oracles.len()).map(|_| None).collect();
                for _ in 0..40 {
                    let i = (rng() % tenants.oracles.len() as u64) as usize;
                    let oracle = &tenants.oracles[i];
                    let remote = match &mut remotes[i] {
                        Some(r) => r,
                        slot => slot
                            .insert(connect(addr, &doc_id(i), chatty_client()).expect("connect")),
                    };
                    let n_chunks = oracle.protected.chunk_count() as u64;
                    let ci = (rng() % n_chunks) as usize;
                    let range = oracle.protected.chunk_range(ci);
                    let mut got = vec![0u8; range.len()];
                    remote.protected.store.read_at(range.start, &mut got).expect("read");
                    assert_eq!(
                        got,
                        &oracle.protected.ciphertext()[range],
                        "tenant {i} chunk {ci} diverged under the randomized workload"
                    );
                }
            });
        }
    });

    let snap = handle.service_snapshot();
    assert!(
        snap.registry.resident_bytes_peak <= (BUDGET + CHUNK) as u64,
        "global residency bound violated: peak {} over budget {BUDGET} (+1 chunk)",
        snap.registry.resident_bytes_peak
    );
    assert!(
        snap.registry.doc_closes >= 1 && snap.registry.doc_opens >= 7,
        "an open cap of 2 under 6 tenants must churn: {snap:?}"
    );
    assert!(
        snap.registry.pool_refetches > 0,
        "evict/reopen cycles must show up as refetches: {snap:?}"
    );
    handle.shutdown().expect("shutdown");
}
