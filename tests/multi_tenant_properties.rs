//! Property tests for multi-tenant routing: the `Hello` doc-id
//! negotiation must be **total and typed** over arbitrary identifier
//! byte strings (route, or reject with the right typed fault — never
//! hang, panic, or mis-route), and tenants must be perfectly isolated:
//! a connection bound to document A never receives a chunk, meta
//! payload or digest belonging to document B, pinned by SHA-1 over
//! every delivered span.
//!
//! Everything here speaks the raw wire protocol (hand-built frames over
//! a plain `TcpStream`), so hostile inputs the typed client could never
//! emit — non-UTF-8 doc-ids, interleaved re-Hellos — are exercised
//! against the real server loop.

use proptest::prelude::*;
use std::net::TcpStream;
use std::sync::Arc;
use xsac::crypto::chunk::ChunkLayout;
use xsac::crypto::{sha1, IntegrityScheme, TripleDes};
use xsac::net::wire::{self, ChunkSpan, Request, Response};
use xsac::net::{ChunkServer, DocRegistry, Fault, ServerHandle, PROTOCOL_VERSION};
use xsac::soe::ServerDoc;
use xsac::xml::Document;

const MAX_FRAME: usize = 1 << 20;

fn key() -> TripleDes {
    TripleDes::new(*b"mt-property-key-24-abcde")
}

fn tiny_layout() -> ChunkLayout {
    ChunkLayout { chunk_size: 256, fragment_size: 32 }
}

fn tenant_xml(i: usize) -> String {
    let mut xml = String::from("<a>");
    for k in 0..30 {
        xml.push_str(&format!("<r><k>tenant {i} keep {k}</k><d>tenant {i} drop {k}</d></r>"));
    }
    xml.push_str("</a>");
    xml
}

const TENANT_IDS: &[&str] = &["tenant-a", "tenant-b"];

/// Two resident tenants with distinct content, plus each tenant's
/// expected ciphertext, chunk hashes and meta payload. Document
/// preparation (debug-mode 3DES) dominates per-case cost, so the
/// registry is built once and shared; each case spawns its own (cheap)
/// server over it.
struct Fixture {
    registry: Arc<DocRegistry>,
    docs: Vec<ServerDoc>,
    chunk_sha1: Vec<Vec<[u8; 20]>>,
    meta_bytes: Vec<Vec<u8>>,
}

struct LiveFixture {
    fx: &'static Fixture,
    handle: ServerHandle,
}

impl std::ops::Deref for LiveFixture {
    type Target = Fixture;
    fn deref(&self) -> &Fixture {
        self.fx
    }
}

fn fixture() -> LiveFixture {
    static FIXTURE: std::sync::OnceLock<Fixture> = std::sync::OnceLock::new();
    let fx = FIXTURE.get_or_init(|| {
        let registry = Arc::new(DocRegistry::new(1 << 16));
        let mut docs = Vec::new();
        let mut chunk_sha1 = Vec::new();
        let mut meta_bytes = Vec::new();
        for (i, id) in TENANT_IDS.iter().enumerate() {
            let doc = Document::parse(&tenant_xml(i)).unwrap();
            let scheme = if i % 2 == 0 { IntegrityScheme::EcbMht } else { IntegrityScheme::Ecb };
            let prepared = ServerDoc::prepare(&doc, &key(), scheme, tiny_layout());
            registry.insert(*id, ServerDoc::prepare(&doc, &key(), scheme, tiny_layout()));
            let hashes: Vec<[u8; 20]> = (0..prepared.protected.chunk_count())
                .map(|ci| {
                    sha1(&prepared.protected.ciphertext()[prepared.protected.chunk_range(ci)])
                })
                .collect();
            meta_bytes.push(xsac::net::meta::encode_meta(&prepared.meta()));
            chunk_sha1.push(hashes);
            docs.push(prepared);
        }
        Fixture { registry, docs, chunk_sha1, meta_bytes }
    });
    let handle =
        ChunkServer::with_registry(Arc::clone(&fx.registry)).spawn("127.0.0.1:0").expect("spawn");
    LiveFixture { fx, handle }
}

/// Connects a raw protocol socket. `TCP_NODELAY` matters: these tests
/// issue many small back-to-back request frames, and Nagle + delayed
/// ACK would serialize each one onto a ~40 ms clock.
fn raw_socket(fx: &LiveFixture) -> TcpStream {
    let sock = TcpStream::connect(fx.handle.addr()).unwrap();
    sock.set_nodelay(true).unwrap();
    sock
}

fn call(sock: &mut TcpStream, req: &Request) -> Response {
    let mut buf = Vec::new();
    wire::write_frame(sock, &req.encode()).expect("write frame");
    wire::read_frame(sock, MAX_FRAME, &mut buf).expect("read frame");
    Response::decode(&buf).expect("decode response")
}

fn raw_call(sock: &mut TcpStream, body: &[u8]) -> Response {
    let mut buf = Vec::new();
    wire::write_frame(sock, body).expect("write frame");
    wire::read_frame(sock, MAX_FRAME, &mut buf).expect("read frame");
    Response::decode(&buf).expect("decode response")
}

/// Doc-ids stressing the router: registered ids, near-misses, and
/// arbitrary strings over a hostile alphabet (the shim's `.` class
/// includes quotes, controls, non-ASCII and more).
fn arb_doc_id() -> impl Strategy<Value = String> {
    prop_oneof![
        2 => proptest::sample::select(TENANT_IDS).prop_map(|s| s.to_string()),
        1 => proptest::sample::select(&["tenant-c", "TENANT-A", "tenant-a ", "", "hospital"])
            .prop_map(|s| s.to_string()),
        3 => proptest::string::string_regex(".{0,12}").unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..Default::default() })]

    /// Routing is total and typed: every doc-id string either routes to
    /// its registered tenant (Hello announcing that tenant's geometry)
    /// or draws `Fault::UnknownDoc` echoing the requested id — on a
    /// connection that stays usable for a correct retry.
    #[test]
    fn hello_routing_is_total_and_typed(ids in prop::collection::vec(arb_doc_id(), 1..5)) {
        let fx = fixture();
        let mut sock = raw_socket(&fx);
        for id in &ids {
            let hello = Request::Hello { version: PROTOCOL_VERSION, doc_id: id.clone() };
            match (TENANT_IDS.iter().position(|t| t == id), call(&mut sock, &hello)) {
                (Some(i), Response::Hello(info)) => {
                    prop_assert_eq!(
                        info.ciphertext_len as usize,
                        fx.docs[i].protected.ciphertext_len(),
                        "doc id {:?} routed to the wrong tenant", id
                    );
                }
                (None, Response::Err(Fault::UnknownDoc { requested })) => {
                    prop_assert_eq!(&requested, id, "rejection must echo the requested id");
                }
                (expected, got) => {
                    return Err(TestCaseError::fail(format!(
                        "doc id {id:?} (registered: {}): got {got:?}",
                        expected.is_some()
                    )));
                }
            }
        }
        // The connection survives any rejection mix: a registered Hello
        // still succeeds afterwards.
        match call(&mut sock, &Request::Hello {
            version: PROTOCOL_VERSION,
            doc_id: TENANT_IDS[0].to_string(),
        }) {
            Response::Hello(_) => {}
            other => return Err(TestCaseError::fail(format!(
                "connection unusable after rejections: {other:?}"
            ))),
        }
        fx.handle.shutdown().unwrap();
    }

    /// A `Hello` whose doc-id bytes are not UTF-8 is a typed
    /// `BadRequest` — the decode failure never kills the server or the
    /// connection.
    #[test]
    fn non_utf8_doc_id_is_typed_bad_request(prefix in prop::collection::vec(any::<u8>(), 0..8)) {
        let fx = fixture();
        let mut sock = raw_socket(&fx);
        // Hand-built Hello body: tag, version, then a length-prefixed
        // byte string ending in 0xFF — invalid in any UTF-8 position.
        let mut id_bytes = prefix;
        id_bytes.push(0xFF);
        let mut body = vec![0x01u8];
        body.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        body.extend_from_slice(&u32::try_from(id_bytes.len()).unwrap().to_le_bytes());
        body.extend_from_slice(&id_bytes);
        match raw_call(&mut sock, &body) {
            Response::Err(Fault::BadRequest { .. }) => {}
            other => return Err(TestCaseError::fail(format!(
                "expected BadRequest for a non-UTF-8 doc id, got {other:?}"
            ))),
        }
        // The connection still routes a well-formed Hello.
        match call(&mut sock, &Request::Hello {
            version: PROTOCOL_VERSION,
            doc_id: TENANT_IDS[1].to_string(),
        }) {
            Response::Hello(_) => {}
            other => return Err(TestCaseError::fail(format!(
                "connection unusable after a malformed frame: {other:?}"
            ))),
        }
        fx.handle.shutdown().unwrap();
    }

    /// The compact `GetMeta` decode is total and typed over hostile
    /// payloads: announced lengths, geometry and digest table must agree
    /// exactly as honest preparation produces them, or the decode is a
    /// typed `WireError` — never a panic, never an inconsistent
    /// `DocMeta` handed to the session layer. And a client that just
    /// refused a hostile meta has poisoned nothing: the same server
    /// still answers an honest handshake on a fresh socket.
    #[test]
    fn hostile_meta_decode_is_total_and_typed(
        tenant in 0usize..2,
        ct_delta in 1usize..64,
        flip_at in any::<u16>(),
        flip_bit in 0u8..8,
        cut in any::<u16>(),
    ) {
        use xsac::net::meta::{decode_meta, encode_meta};
        use xsac::net::WireError;
        let fx = fixture();
        let good_bytes = &fx.meta_bytes[tenant];
        let good = decode_meta(good_bytes).expect("honest meta decodes");

        // Ciphertext length that is not the block-padded plaintext
        // length (any nonzero delta breaks the padding equation).
        let mut evil = good.clone();
        evil.ciphertext_len += ct_delta;
        prop_assert!(
            matches!(decode_meta(&encode_meta(&evil)), Err(WireError::Malformed(_))),
            "inconsistent ciphertext length must be refused"
        );

        // Digest table disagreeing with the announced geometry — too
        // short, too long, and (for the digestless scheme) non-empty.
        let mut evil = good.clone();
        if evil.digests.pop().is_none() {
            evil.digests.push([0u8; xsac::crypto::chunk::DIGEST_RECORD]);
        }
        prop_assert!(
            matches!(decode_meta(&encode_meta(&evil)), Err(WireError::Malformed(_))),
            "digest table disagreeing with geometry must be refused"
        );

        // Geometry scramble on the tamper-resistant tenant: a different
        // (even self-consistent) chunk size makes the digest table the
        // wrong length for the announced ciphertext.
        let mut evil = decode_meta(&fx.meta_bytes[0]).expect("honest meta decodes");
        evil.layout.chunk_size *= 2;
        prop_assert!(
            matches!(decode_meta(&encode_meta(&evil)), Err(WireError::Malformed(_))),
            "geometry disagreeing with the digest table must be refused"
        );

        // Any truncation is a typed error, and any single bit flip is
        // *total*: it decodes or errors, but never panics and never
        // yields a meta whose geometry disagrees with itself.
        let cut = (cut as usize) % good_bytes.len();
        prop_assert!(decode_meta(&good_bytes[..cut]).is_err());
        let mut flipped = good_bytes.clone();
        let at = (flip_at as usize) % flipped.len();
        flipped[at] ^= 1 << flip_bit;
        if let Ok(meta) = decode_meta(&flipped) {
            prop_assert_eq!(meta.ciphertext_len, meta.plain_len.div_ceil(8) * 8);
        }

        // The server that served the honest bytes is untouched by any of
        // this: a fresh handshake still round-trips byte-identically.
        let mut sock = raw_socket(&fx);
        match call(&mut sock, &Request::Hello {
            version: PROTOCOL_VERSION,
            doc_id: TENANT_IDS[tenant].to_string(),
        }) {
            Response::Hello(_) => {}
            other => return Err(TestCaseError::fail(format!("Hello failed: {other:?}"))),
        }
        match call(&mut sock, &Request::GetMeta) {
            Response::Meta(bytes) => prop_assert_eq!(&bytes, good_bytes),
            other => return Err(TestCaseError::fail(format!("GetMeta failed: {other:?}"))),
        }
        fx.handle.shutdown().unwrap();
    }

    /// Cross-tenant isolation, pinned by SHA-1: over a random schedule
    /// of interleaved re-Hellos and chunk reads on one connection, every
    /// delivered chunk hashes to the owning tenant's expected ciphertext
    /// chunk, and every meta payload is byte-identical to the owning
    /// tenant's encoding — zero bytes of document B on a session bound
    /// to document A.
    #[test]
    fn sessions_never_receive_other_tenants_bytes(
        ops in prop::collection::vec((any::<bool>(), any::<u16>(), 1u8..4), 1..24)
    ) {
        let fx = fixture();
        let mut sock = raw_socket(&fx);
        let mut bound: Option<usize> = None;
        for (switch, pick, count) in ops {
            let tenant = (pick as usize) % TENANT_IDS.len();
            if switch || bound.is_none() {
                match call(&mut sock, &Request::Hello {
                    version: PROTOCOL_VERSION,
                    doc_id: TENANT_IDS[tenant].to_string(),
                }) {
                    Response::Hello(_) => bound = Some(tenant),
                    other => return Err(TestCaseError::fail(format!("Hello failed: {other:?}"))),
                }
            }
            let owner = bound.expect("bound after Hello");
            let n_chunks = fx.docs[owner].protected.chunk_count() as u64;
            let first = (pick as u64).wrapping_mul(7) % n_chunks;
            let count = u32::from(count).min(u32::try_from(n_chunks - first).unwrap());
            let meta = call(&mut sock, &Request::GetMeta);
            match meta {
                Response::Meta(bytes) => prop_assert_eq!(
                    &bytes,
                    &fx.meta_bytes[owner],
                    "meta for tenant {} is not the owner's encoding", owner
                ),
                other => return Err(TestCaseError::fail(format!("GetMeta failed: {other:?}"))),
            }
            match call(&mut sock, &Request::GetChunks {
                spans: vec![ChunkSpan { first, count }],
            }) {
                Response::Chunks(chunks) => {
                    prop_assert_eq!(chunks.len(), count as usize);
                    for (ci, bytes) in chunks {
                        let want = fx.chunk_sha1[owner][ci as usize];
                        let other = fx.chunk_sha1[1 - owner].get(ci as usize);
                        let got = sha1(&bytes);
                        prop_assert_eq!(
                            got, want,
                            "chunk {} on a session bound to tenant {} is not the owner's", ci, owner
                        );
                        if let Some(&foreign) = other {
                            prop_assert_ne!(
                                got, foreign,
                                "chunk {} matches the OTHER tenant — cross-tenant leak", ci
                            );
                        }
                    }
                }
                other => return Err(TestCaseError::fail(format!("GetChunks failed: {other:?}"))),
            }
        }
        fx.handle.shutdown().unwrap();
    }
}
