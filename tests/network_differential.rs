//! Differential harness for the networked dissemination front: a session
//! over a loopback socket must be *indistinguishable* from an in-memory
//! one — the paper's client-based-enforcement claim made literal.
//!
//! A `ChunkServer` serves a hospital document on 127.0.0.1; a
//! `RemoteStore` client runs the five Figure-10 views × {ECB, ECB-MHT}
//! through the **unchanged** session code. Delivery logs, `AccessCost`
//! (including the refetch audit) and every session statistic must be
//! byte-identical to the in-memory backend, and both must match the DOM
//! oracle. The fault half then checks that the network can only fail
//! *loudly*: a server gone mid-session is a typed `SessionError::Store`,
//! a tampered byte on the server is detected client-side as
//! `SessionError::Integrity`, and a client window too small to cache the
//! document still produces identical views while the refetch meters
//! record the extra round trips.

use xsac::core::oracle::oracle_view_string;
use xsac::core::output::reassemble_to_string;
use xsac::crypto::chunk::ChunkLayout;
use xsac::crypto::{IntegrityScheme, TripleDes};
use xsac::datagen::hospital::{hospital_document, physician_name, HospitalConfig};
use xsac::datagen::profiles::View;
use xsac::net::{connect, ChunkServer, ClientConfig};
use xsac::soe::{run_session, ServerDoc, SessionConfig, SessionError};
use xsac::xml::Document;

fn key() -> TripleDes {
    TripleDes::new(*b"network-diff-key-24-abcd")
}

fn tiny_layout() -> ChunkLayout {
    ChunkLayout { chunk_size: 256, fragment_size: 32 }
}

fn hospital() -> Document {
    hospital_document(&HospitalConfig { folders: 2, ..Default::default() }, 77)
}

#[test]
fn remote_sessions_equal_in_memory_sessions_and_oracle() {
    let doc = hospital();
    let frequent = physician_name(0);
    let rare = physician_name(HospitalConfig::default().physicians - 1);
    for scheme in [IntegrityScheme::Ecb, IntegrityScheme::EcbMht] {
        let mem = ServerDoc::prepare(&doc, &key(), scheme, tiny_layout());
        let served = ServerDoc::prepare(&doc, &key(), scheme, tiny_layout());
        let handle = ChunkServer::new(served, "hospital").spawn("127.0.0.1:0").expect("spawn");
        // Two client configurations: a comfortable window, and a
        // one-chunk window with no batching — worst-case round trips.
        // Both must be invisible to everything but the store meters.
        let configs = [
            ClientConfig::default(),
            ClientConfig { window_bytes: 1, batch_chunks: 1, ..ClientConfig::default() },
        ];
        for (k, config) in configs.iter().enumerate() {
            let remote = connect(handle.addr(), "hospital", *config).expect("connect");
            for view in View::ALL {
                let mut dict = mem.dict.clone();
                let policy = view.policy(&mut dict, &frequent, &rare);
                let expected = oracle_view_string(&doc, &policy);
                let config = SessionConfig::default();
                let a = run_session(&mem, &key(), &policy, None, &config).expect("mem session");
                let b =
                    run_session(&remote, &key(), &policy, None, &config).expect("remote session");
                let label = format!("{scheme:?} {} client#{k}", view.name());
                assert_eq!(a.log, b.log, "{label}: delivery log diverged over the wire");
                assert_eq!(a.cost, b.cost, "{label}: AccessCost diverged over the wire");
                assert_eq!(a.output, b.output, "{label}");
                assert_eq!(a.stats, b.stats, "{label}");
                assert_eq!(a.result_bytes, b.result_bytes, "{label}");
                assert_eq!(a.handles_created, b.handles_created, "{label}");
                assert_eq!(a.handles_peak, b.handles_peak, "{label}");
                let got = reassemble_to_string(&dict, &b.log);
                assert_eq!(got, expected, "{label}: remote view diverged from oracle");
            }
            let stats = remote.protected.store.stats();
            assert!(stats.round_trips > 0, "client#{k} never touched the network");
            if k == 1 {
                // The one-chunk window cannot cache across sessions: the
                // refetch meters must show the price.
                assert!(
                    stats.chunks_refetched > 0,
                    "a one-chunk window across 5 views must refetch"
                );
            }
        }
        // The service snapshot attributes every byte to the one tenant:
        // the single-doc server is just a one-entry registry.
        let snap = handle.service_snapshot();
        assert_eq!(snap.registry.unknown_doc_rejections, 0, "no doc id was ever mistyped");
        let row = snap.registry.docs.iter().find(|r| r.doc_id == "hospital").expect("tenant row");
        assert!(row.open && !row.lazy, "an inserted document is resident: {row:?}");
        assert_eq!(
            row.chunks_served, snap.chunks_served,
            "a one-tenant service attributes all chunks to its tenant"
        );
        assert_eq!(snap.admission_rejections, 0, "two clients fit the default admission cap");
        handle.shutdown().expect("shutdown");
    }
}

#[test]
fn document_larger_than_frame_guard_serves_with_o_layout_meta() {
    // The wire acceptance bar for the streamed skip-index: a document
    // whose *encoded plaintext* exceeds the 64 KiB frame guard still
    // protects, connects and serves byte-identical Figure-10 views —
    // because no frame in either direction ever carries the document
    // whole. `GetMeta` is O(layout) (dictionary + geometry + digest
    // table), and ciphertext moves in bounded chunk batches. The client
    // is configured to *reject* any frame over the guard, so an
    // O(plaintext) meta would fail the handshake loudly.
    use xsac::net::wire::DEFAULT_SERVER_MAX_FRAME;
    let doc = hospital_document(&HospitalConfig { folders: 40, ..Default::default() }, 11);
    let layout = ChunkLayout::default();
    let mem = ServerDoc::prepare(&doc, &key(), IntegrityScheme::EcbMht, layout);
    assert!(
        mem.protected.plain_len > DEFAULT_SERVER_MAX_FRAME,
        "test document must exceed the frame guard: {} encoded bytes",
        mem.protected.plain_len
    );
    let meta_wire = xsac::net::meta::encode_meta(&mem.meta()).len();
    assert!(
        meta_wire < DEFAULT_SERVER_MAX_FRAME,
        "GetMeta payload must stay under the frame guard: {meta_wire} bytes"
    );
    let served = ServerDoc::prepare(&doc, &key(), IntegrityScheme::EcbMht, layout);
    let handle = ChunkServer::new(served, "big").spawn("127.0.0.1:0").expect("spawn");
    let remote = connect(
        handle.addr(),
        "big",
        ClientConfig { max_frame: DEFAULT_SERVER_MAX_FRAME, ..ClientConfig::default() },
    )
    .expect("a document bigger than the frame guard must still connect");
    let frequent = physician_name(0);
    let rare = physician_name(HospitalConfig::default().physicians - 1);
    for view in View::ALL {
        let mut dict = mem.dict.clone();
        let policy = view.policy(&mut dict, &frequent, &rare);
        let config = SessionConfig::default();
        let a = run_session(&mem, &key(), &policy, None, &config).expect("mem session");
        let b = run_session(&remote, &key(), &policy, None, &config).expect("remote session");
        assert_eq!(a.log, b.log, "{}: delivery log diverged over the wire", view.name());
        assert_eq!(a.cost, b.cost, "{}: AccessCost diverged over the wire", view.name());
        let expected = oracle_view_string(&doc, &policy);
        let got = reassemble_to_string(&dict, &b.log);
        assert_eq!(got, expected, "{}: remote view diverged from oracle", view.name());
    }
    handle.shutdown().expect("shutdown");
}

#[test]
fn server_gone_mid_session_is_typed_store_error() {
    let doc = hospital();
    let mem = ServerDoc::prepare(&doc, &key(), IntegrityScheme::EcbMht, tiny_layout());
    let served = ServerDoc::prepare(&doc, &key(), IntegrityScheme::EcbMht, tiny_layout());
    let handle = ChunkServer::new(served, "hospital").spawn("127.0.0.1:0").expect("spawn");
    // One-chunk window: every session must talk to the server.
    let remote = connect(
        handle.addr(),
        "hospital",
        ClientConfig { window_bytes: 1, batch_chunks: 1, ..ClientConfig::default() },
    )
    .expect("connect");
    let mut dict = remote.dict.clone();
    let policy = View::S.policy(&mut dict, &physician_name(0), &physician_name(1));
    // While the server lives, the session succeeds…
    let ok = run_session(&remote, &key(), &policy, None, &SessionConfig::default());
    assert!(ok.is_ok(), "session with a live server must succeed");
    // …after it dies, the *same* session aborts with a typed storage
    // error: no panic, no partial view, exactly like a dying disk.
    handle.shutdown().expect("shutdown");
    match run_session(&remote, &key(), &policy, None, &SessionConfig::default()) {
        Err(SessionError::Store(e)) => {
            let _ = e.to_string(); // displayable, like every typed error
        }
        Err(other) => panic!("expected SessionError::Store, got {other}"),
        Ok(_) => panic!("session must not succeed against a dead server"),
    }
    // The in-memory reference still serves the full view (sanity).
    run_session(&mem, &key(), &policy, None, &SessionConfig::default()).expect("reference");
}

#[test]
fn tampered_server_store_detected_client_side() {
    let doc = hospital();
    let mut served = ServerDoc::prepare(&doc, &key(), IntegrityScheme::EcbMht, tiny_layout());
    // The untrusted server flips one ciphertext byte before publishing —
    // inside chunk 0, which every session verifies for the header read.
    // (Random integrity checking covers exactly what is *read*: a flip in
    // a subtree the policy skips is never fetched, so never seen.)
    served.protected.ciphertext_mut()[100] ^= 0x20;
    let handle = ChunkServer::new(served, "hospital").spawn("127.0.0.1:0").expect("spawn");
    let remote = connect(handle.addr(), "hospital", ClientConfig::default()).expect("connect");
    let mut dict = remote.dict.clone();
    let policy = View::S.policy(&mut dict, &physician_name(0), &physician_name(1));
    match run_session(&remote, &key(), &policy, None, &SessionConfig::default()) {
        Err(SessionError::Integrity(_)) => {} // the SOE caught the server lying
        Err(other) => panic!("expected SessionError::Integrity, got {other}"),
        Ok(_) => panic!("tampered ciphertext must not produce a view"),
    }
    handle.shutdown().expect("shutdown");
}

#[test]
fn remote_refetch_audit_matches_in_memory_audit() {
    // `AccessCost::bytes_refetched` is reader-side and must be identical
    // across backends — the remote round trips it predicts are then
    // visible in the store-side meters.
    let doc = hospital();
    let mem = ServerDoc::prepare(&doc, &key(), IntegrityScheme::Ecb, tiny_layout());
    let served = ServerDoc::prepare(&doc, &key(), IntegrityScheme::Ecb, tiny_layout());
    let handle = ChunkServer::new(served, "hospital").spawn("127.0.0.1:0").expect("spawn");
    let remote = connect(
        handle.addr(),
        "hospital",
        ClientConfig { window_bytes: 1, batch_chunks: 1, ..ClientConfig::default() },
    )
    .expect("connect");
    let frequent = physician_name(0);
    let rare = physician_name(1);
    for view in View::ALL {
        let mut dict = mem.dict.clone();
        let policy = view.policy(&mut dict, &frequent, &rare);
        let config = SessionConfig::default();
        let a = run_session(&mem, &key(), &policy, None, &config).expect("mem");
        let b = run_session(&remote, &key(), &policy, None, &config).expect("remote");
        assert_eq!(
            a.cost.bytes_refetched,
            b.cost.bytes_refetched,
            "{}: refetch audit diverged across backends",
            view.name()
        );
    }
    handle.shutdown().expect("shutdown");
}
