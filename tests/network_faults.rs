//! Differential fault-injection harness for the resilience layer: a
//! [`FaultTransport`] chaos proxy sits between a `RemoteStore` client
//! and a `ChunkServer`, and every scripted fault schedule must land in
//! exactly one of two buckets:
//!
//! * **recoverable** — transient transport faults (dropped connections,
//!   truncated frames, duplicated frames, a mid-session server restart)
//!   are absorbed by the client's reconnect/retry machinery and the
//!   session completes **byte-identical** to the in-memory oracle; the
//!   only observable difference is the retry accounting in
//!   `RemoteStats` (`reconnects`, `retried_chunks`, `backoff_ms`);
//! * **unrecoverable** — exhausted retries, a stalled server, or a
//!   reconnect onto *different dissemination material* surface as the
//!   right typed error (`SessionError::Store`, with
//!   `StoreError::IdentityChanged` for the latter) and the session
//!   yields **no partial plaintext**.

use xsac::core::oracle::oracle_view_string;
use xsac::core::output::reassemble_to_string;
use xsac::crypto::chunk::ChunkLayout;
use xsac::crypto::store::StoreError;
use xsac::crypto::{IntegrityScheme, TripleDes};
use xsac::datagen::hospital::{hospital_document, physician_name, HospitalConfig};
use xsac::datagen::profiles::View;
use xsac::net::{
    connect, ChunkServer, ClientConfig, FaultPlan, FaultTransport, NetFault, RetryConfig,
};
use xsac::soe::{run_session, ServerDoc, SessionConfig, SessionError};
use xsac::xml::Document;

fn key() -> TripleDes {
    TripleDes::new(*b"network-fault-key-24-abc")
}

fn tiny_layout() -> ChunkLayout {
    ChunkLayout { chunk_size: 256, fragment_size: 32 }
}

fn hospital() -> Document {
    hospital_document(&HospitalConfig { folders: 2, ..Default::default() }, 77)
}

/// A client configuration that exercises the network hard (one-chunk
/// window, no batching) and retries fast enough for tests.
fn chatty_client() -> ClientConfig {
    ClientConfig {
        window_bytes: 1,
        batch_chunks: 1,
        retry: RetryConfig {
            max_retries: 6,
            backoff_base: std::time::Duration::from_millis(2),
            backoff_max: std::time::Duration::from_millis(50),
            jitter_seed: 42,
        },
        ..ClientConfig::default()
    }
}

/// The acceptance schedule: three distinct transient faults — a dead
/// socket, a mid-frame truncation, a duplicated response frame — hit
/// one session, which must complete byte-identically to the in-memory
/// oracle with `reconnects == 3`.
#[test]
fn recoverable_fault_schedule_yields_byte_identical_session() {
    let doc = hospital();
    let mem = ServerDoc::prepare(&doc, &key(), IntegrityScheme::EcbMht, tiny_layout());
    let served = ServerDoc::prepare(&doc, &key(), IntegrityScheme::EcbMht, tiny_layout());
    let handle = ChunkServer::new(served, "hospital").spawn("127.0.0.1:0").expect("spawn");
    let proxy = FaultTransport::spawn(handle.addr()).expect("proxy");
    // Frames are server→client responses: 0 = Hello, 1 = Meta, 2… =
    // Chunks. Connection 1 dies on the 3rd chunk response, connection 2
    // truncates its 2nd, connection 3 duplicates its 2nd (desyncing the
    // response stream), connection 4 (empty queue) is clean.
    proxy.push_plan(FaultPlan::faulty(NetFault::DropAfter(4)));
    proxy.push_plan(FaultPlan::faulty(NetFault::TruncateAfter(3)));
    proxy.push_plan(FaultPlan::faulty(NetFault::DuplicateAt(3)));
    let remote = connect(proxy.addr(), "hospital", chatty_client()).expect("connect");

    let mut dict = mem.dict.clone();
    let policy = View::S.policy(&mut dict, &physician_name(0), &physician_name(1));
    let expected = oracle_view_string(&doc, &policy);
    let config = SessionConfig::default();
    let a = run_session(&mem, &key(), &policy, None, &config).expect("mem session");
    let b = run_session(&remote, &key(), &policy, None, &config).expect("faulted session");

    assert_eq!(a.log, b.log, "delivery log diverged across the fault schedule");
    assert_eq!(a.cost, b.cost, "AccessCost diverged across the fault schedule");
    assert_eq!(a.output, b.output);
    assert_eq!(a.stats, b.stats);
    assert_eq!(reassemble_to_string(&dict, &b.log), expected, "view diverged from oracle");

    let stats = remote.protected.store.stats();
    assert_eq!(stats.reconnects, 3, "three faults, three reconnects: {stats:?}");
    assert!(stats.retried_chunks >= 3, "each fault re-issues its in-flight batch: {stats:?}");
    assert_eq!(proxy.conn_count(), 4, "initial connection + three replacements");
    proxy.shutdown();
    handle.shutdown().expect("shutdown");
}

/// A reconnect that lands on a server publishing *different* material
/// under the same doc id must fail with the typed identity error — the
/// session is never silently re-synced.
#[test]
fn reconnect_onto_different_document_is_typed_identity_error() {
    let doc_a = hospital();
    let doc_b = hospital_document(&HospitalConfig { folders: 2, ..Default::default() }, 78);
    let served_a = ServerDoc::prepare(&doc_a, &key(), IntegrityScheme::EcbMht, tiny_layout());
    let served_b = ServerDoc::prepare(&doc_b, &key(), IntegrityScheme::EcbMht, tiny_layout());
    let handle_a = ChunkServer::new(served_a, "hospital").spawn("127.0.0.1:0").expect("spawn a");
    let handle_b = ChunkServer::new(served_b, "hospital").spawn("127.0.0.1:0").expect("spawn b");
    let proxy = FaultTransport::spawn(handle_a.addr()).expect("proxy");
    // Connection 1 (to server A) dies after two chunk responses; every
    // later connection is routed to server B, whose metadata cannot
    // hash-match the session's original.
    proxy.push_plan(FaultPlan::faulty(NetFault::DropAfter(4)));
    let remote = connect(proxy.addr(), "hospital", chatty_client()).expect("connect");
    proxy.set_backend(handle_b.addr());

    let mut dict = remote.dict.clone();
    let policy = View::S.policy(&mut dict, &physician_name(0), &physician_name(1));
    match run_session(&remote, &key(), &policy, None, &SessionConfig::default()) {
        Err(SessionError::Store(StoreError::IdentityChanged { .. })) => {}
        Err(other) => panic!("expected IdentityChanged, got {other}"),
        Ok(_) => panic!("a session must not complete over swapped dissemination material"),
    }
    // Permanent: the identity failure is not retried into oblivion —
    // exactly one replacement connection was attempted.
    assert_eq!(proxy.conn_count(), 2, "identity mismatch must not be retried");
    proxy.shutdown();
    handle_a.shutdown().expect("shutdown a");
    handle_b.shutdown().expect("shutdown b");
}

/// Faults beyond the retry budget collapse to the same typed
/// `SessionError::Store` a dying disk produces, with no partial view.
#[test]
fn persistent_drops_exhaust_retries_into_typed_error() {
    let doc = hospital();
    let served = ServerDoc::prepare(&doc, &key(), IntegrityScheme::Ecb, tiny_layout());
    let handle = ChunkServer::new(served, "hospital").spawn("127.0.0.1:0").expect("spawn");
    let proxy = FaultTransport::spawn(handle.addr()).expect("proxy");
    // Every connection survives its handshake (frames 0 and 1) and dies
    // on the first chunk response — no retry budget can outlast that.
    for _ in 0..12 {
        proxy.push_plan(FaultPlan::faulty(NetFault::DropAfter(2)));
    }
    let mut config = chatty_client();
    config.retry.max_retries = 3;
    let remote = connect(proxy.addr(), "hospital", config).expect("connect");
    let mut dict = remote.dict.clone();
    let policy = View::S.policy(&mut dict, &physician_name(0), &physician_name(1));
    match run_session(&remote, &key(), &policy, None, &SessionConfig::default()) {
        // Err carries no delivery log: nothing partial was produced.
        Err(SessionError::Store(e)) => {
            assert!(e.is_transient(), "exhaustion surfaces the last transport error: {e:?}")
        }
        Err(other) => panic!("expected SessionError::Store, got {other}"),
        Ok(_) => panic!("session must not survive a fault on every connection"),
    }
    let stats = remote.protected.store.stats();
    assert!(stats.reconnects >= 3, "the budget was spent reconnecting: {stats:?}");
    assert!(stats.backoff_ms > 0, "retries must have backed off: {stats:?}");
    proxy.shutdown();
    handle.shutdown().expect("shutdown");
}

/// A server that stops answering trips the client's I/O deadline — a
/// bounded, typed timeout, not a hang.
#[test]
fn stalled_server_times_out_into_typed_error() {
    let doc = hospital();
    let served = ServerDoc::prepare(&doc, &key(), IntegrityScheme::Ecb, tiny_layout());
    let handle = ChunkServer::new(served, "hospital").spawn("127.0.0.1:0").expect("spawn");
    let proxy = FaultTransport::spawn(handle.addr()).expect("proxy");
    // Connection 1 dies after the handshake; every replacement stalls
    // during its own handshake, so the read deadline decides.
    proxy.push_plan(FaultPlan::faulty(NetFault::DropAfter(2)));
    for _ in 0..8 {
        proxy.push_plan(FaultPlan::faulty(NetFault::Stall));
    }
    let mut config = chatty_client();
    config.retry.max_retries = 2;
    config.io_timeout = Some(std::time::Duration::from_millis(150));
    let remote = connect(proxy.addr(), "hospital", config).expect("connect");
    let mut dict = remote.dict.clone();
    let policy = View::S.policy(&mut dict, &physician_name(0), &physician_name(1));
    let start = std::time::Instant::now();
    match run_session(&remote, &key(), &policy, None, &SessionConfig::default()) {
        Err(SessionError::Store(StoreError::Io { kind, .. })) => {
            use std::io::ErrorKind;
            assert!(
                matches!(kind, ErrorKind::TimedOut | ErrorKind::WouldBlock),
                "expected a deadline failure, got {kind:?}"
            );
        }
        Err(other) => panic!("expected a typed timeout, got {other}"),
        Ok(_) => panic!("session must not survive a fully stalled server"),
    }
    assert!(
        start.elapsed() < std::time::Duration::from_secs(10),
        "stall must resolve within the deadline budget, took {:?}",
        start.elapsed()
    );
    proxy.shutdown();
    handle.shutdown().expect("shutdown");
}

/// Satellite: the server is killed mid-session and restarted (same
/// document, fresh port); the session rides the reconnect machinery and
/// completes with output and refetch accounting identical to the
/// in-memory oracle.
#[test]
fn mid_stream_server_restart_resumes_identically() {
    let doc = hospital();
    let mem = ServerDoc::prepare(&doc, &key(), IntegrityScheme::EcbMht, tiny_layout());
    let served_a = ServerDoc::prepare(&doc, &key(), IntegrityScheme::EcbMht, tiny_layout());
    let handle_a = ChunkServer::new(served_a, "hospital").spawn("127.0.0.1:0").expect("spawn a");
    let proxy = std::sync::Arc::new(FaultTransport::spawn(handle_a.addr()).expect("proxy"));
    // Connection 1 trickles (2 ms per response frame), so the assassin
    // reliably lands its kill mid-session; the replacement connection
    // (empty plan queue) runs at full speed.
    proxy.push_plan(FaultPlan::delayed(std::time::Duration::from_millis(2)));
    let mut config = chatty_client();
    // Generous budget: the session must outlive the restart window.
    config.retry.max_retries = 10;
    let remote = connect(proxy.addr(), "hospital", config).expect("connect");

    // The assassin: once the first server has demonstrably served part
    // of the session, kill it, bring up a replacement on a *fresh* port
    // (rebinding the old one races TIME_WAIT), and retarget the proxy.
    let doc_for_b = doc.clone();
    let key_b = key();
    let assassin = std::thread::spawn({
        let proxy = std::sync::Arc::clone(&proxy);
        move || {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            // Prepare the successor *before* the kill: the client's
            // retry budget only has to cover the kill→retarget gap, not
            // a document preparation racing loaded CI.
            let served_b =
                ServerDoc::prepare(&doc_for_b, &key_b, IntegrityScheme::EcbMht, tiny_layout());
            while handle_a.metrics().chunks_served() < 4 {
                assert!(std::time::Instant::now() < deadline, "session never started");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            handle_a.shutdown().expect("kill server a");
            let handle_b =
                ChunkServer::new(served_b, "hospital").spawn("127.0.0.1:0").expect("spawn b");
            proxy.set_backend(handle_b.addr());
            handle_b
        }
    });

    let mut dict = mem.dict.clone();
    let policy = View::S.policy(&mut dict, &physician_name(0), &physician_name(1));
    let config = SessionConfig::default();
    let a = run_session(&mem, &key(), &policy, None, &config).expect("mem session");
    let b = run_session(&remote, &key(), &policy, None, &config).expect("resumed session");
    let handle_b = assassin.join().expect("assassin thread");

    assert_eq!(a.log, b.log, "delivery log diverged across the server restart");
    assert_eq!(a.output, b.output);
    assert_eq!(
        a.cost.bytes_refetched, b.cost.bytes_refetched,
        "refetch accounting diverged across the restart"
    );
    let stats = remote.protected.store.stats();
    assert!(stats.reconnects >= 1, "the restart must be visible in the meters: {stats:?}");
    assert!(stats.retried_chunks >= 1, "the in-flight batch was replayed: {stats:?}");
    // The successor's service snapshot shows the resumed session's
    // traffic under the same tenant id, with no routing accidents.
    let snap = handle_b.service_snapshot();
    assert!(snap.chunks_served > 0, "server B must have finished the session: {snap:?}");
    assert_eq!(snap.registry.unknown_doc_rejections, 0);
    std::sync::Arc::try_unwrap(proxy).ok().expect("assassin joined; sole owner").shutdown();
    handle_b.shutdown().expect("shutdown b");
}
