//! Bounded-memory regression tests for the out-of-core serving path: a
//! file-backed `DocServer` run must stay O(window × sessions) resident,
//! never O(document) — so future refactors can't silently re-materialize
//! the ciphertext — and a storage fault mid-session must abort as a typed
//! error with nothing partially delivered.

use xsac::crypto::chunk::ChunkLayout;
use xsac::crypto::store::{FaultStore, InjectedFault, TempPath};
use xsac::crypto::{IntegrityScheme, TripleDes};
use xsac::datagen::hospital::{hospital_document, physician_name, HospitalConfig};
use xsac::datagen::Profile;
use xsac::soe::{DocServer, ServerDoc, SessionError, SessionSpec};

fn key() -> TripleDes {
    TripleDes::new(*b"out-of-core-demo-key-24!")
}

/// A document comfortably larger than the resident window (the
/// acceptance bar is ≥ 8×; this is ~20×+).
fn big_hospital() -> xsac::xml::Document {
    hospital_document(&HospitalConfig { folders: 40, ..Default::default() }, 11)
}

fn workload(server_dict: &xsac::xml::TagDict) -> Vec<SessionSpec> {
    let mut specs = Vec::new();
    for _ in 0..2 {
        for profile in Profile::figure9() {
            let mut dict = server_dict.clone();
            let policy = profile.policy(&physician_name(0), &mut dict);
            specs.push(SessionSpec::new(profile.name(), policy));
        }
    }
    specs
}

#[test]
fn concurrent_file_backed_sessions_stay_within_window_budget() {
    const WINDOW: usize = 8 * 1024;
    let doc = big_hospital();
    let layout = ChunkLayout::default();
    let tmp = TempPath::new("out-of-core");
    let prepared = ServerDoc::prepare_to_store(
        &doc,
        &key(),
        IntegrityScheme::EcbMht,
        layout,
        tmp.path(),
        WINDOW,
    )
    .expect("prepare to store");
    let doc_len = prepared.protected.ciphertext_len();
    assert!(
        doc_len >= 8 * WINDOW,
        "test document ({doc_len} B) must be ≥ 8× the resident window ({WINDOW} B)"
    );

    // Reference: the same workload over the in-memory backend.
    let mem = ServerDoc::prepare(&doc, &key(), IntegrityScheme::EcbMht, layout);
    let mem_server = DocServer::new(mem, key());
    let reference = mem_server.serve_batch(&workload(&mem_server.doc().dict));

    let server = DocServer::new(prepared, key());
    let specs = workload(&server.doc().dict);
    let results = server.serve_concurrent(&specs, 4);

    // Byte-identical delivery and metering, session by session.
    for (i, (got, want)) in results.iter().zip(&reference).enumerate() {
        let (got, want) = (got.as_ref().expect("file session"), want.as_ref().expect("mem"));
        assert_eq!(got.log, want.log, "spec {i}: delivery log diverged across backends");
        assert_eq!(got.cost.bytes_to_soe, want.cost.bytes_to_soe, "spec {i}");
        assert_eq!(got.cost.bytes_decrypted, want.cost.bytes_decrypted, "spec {i}");
        assert_eq!(got.cost.bytes_hashed, want.cost.bytes_hashed, "spec {i}");
        assert_eq!(got.result_bytes, want.result_bytes, "spec {i}");
    }

    // The memory contract: peak residency is bounded by the window times
    // the session count (each live session adds O(chunk) staging), and is
    // a small fraction of the document — the ciphertext was never
    // re-materialized.
    let peak = server.resident_bytes_peak().expect("file store meters residency") as usize;
    assert!(peak > 0, "somebody must have read something");
    assert!(
        peak <= WINDOW * specs.len(),
        "resident peak {peak} exceeds window×sessions = {}",
        WINDOW * specs.len()
    );
    assert!(
        peak * 4 <= doc_len,
        "resident peak {peak} is not ≪ document length {doc_len}: ciphertext re-materialized?"
    );
}

#[test]
fn one_pass_protection_never_holds_o_document() {
    // The publisher side of the memory contract: protecting a document
    // ≥ 8× the serving window streams parse → encode → encrypt → disk,
    // holding only the bit-sink flush buffer plus one chunk under
    // assembly — never the encoded plaintext or the ciphertext whole.
    const WINDOW: usize = 8 * 1024;
    let doc = big_hospital();
    let layout = ChunkLayout::default();
    let tmp = TempPath::new("one-pass-protect");
    let (prepared, stats) = ServerDoc::prepare_to_store_with_stats(
        &doc,
        &key(),
        IntegrityScheme::EcbMht,
        layout,
        tmp.path(),
        WINDOW,
    )
    .expect("prepare to store");
    assert_eq!(stats.encoded_len, prepared.protected.plain_len);
    assert!(
        stats.encoded_len >= 8 * WINDOW,
        "test document ({} B encoded) must be ≥ 8× the window ({WINDOW} B)",
        stats.encoded_len
    );
    assert!(
        stats.peak_buffered <= layout.chunk_size + 2048,
        "protection pipeline must buffer O(chunk), not O(document): \
         peak {} for {} encoded bytes",
        stats.peak_buffered,
        stats.encoded_len
    );
    // And the streamed ciphertext is the one the in-memory path produces.
    let mem = ServerDoc::prepare(&doc, &key(), IntegrityScheme::EcbMht, layout);
    assert_eq!(prepared.protected.digests, mem.protected.digests);
    assert_eq!(std::fs::read(tmp.path()).unwrap(), mem.protected.ciphertext());
}

#[test]
fn storage_fault_mid_session_aborts_with_typed_error() {
    // An I/O fault after the session is underway surfaces as
    // `SessionError::Store`, not a panic and not a truncated view.
    let doc = hospital_document(&HospitalConfig { folders: 3, ..Default::default() }, 5);
    let mem = ServerDoc::prepare(&doc, &key(), IntegrityScheme::EcbMht, ChunkLayout::default());
    let faulty = ServerDoc {
        dict: mem.dict.clone(),
        encoding: mem.encoding,
        protected: mem.protected.clone().map_store(FaultStore::new),
    };
    let mut dict = faulty.dict.clone();
    let policy = Profile::Secretary.policy("sec", &mut dict);
    // Probe run: learn how many store reads this session makes, then
    // schedule a transient fault halfway through the next run.
    xsac::soe::run_session(&faulty, &key(), &policy, None, &Default::default()).expect("probe");
    let per_session = faulty.protected.store.reads_seen();
    assert!(per_session >= 2, "session must hit the store more than once");
    faulty.protected.store.fail_read(per_session + per_session / 2, InjectedFault::Io);
    let res = xsac::soe::run_session(&faulty, &key(), &policy, None, &Default::default());
    match res {
        Err(SessionError::Store(_)) => {}
        Err(e) => panic!("expected SessionError::Store, got {e}"),
        Ok(_) => panic!("expected SessionError::Store, got a successful session"),
    }
    // With the (transient) fault gone, the same document serves fine.
    let ok = xsac::soe::run_session(&faulty, &key(), &policy, None, &Default::default())
        .expect("clean retry");
    let want = xsac::soe::run_session(&mem, &key(), &policy, None, &Default::default())
        .expect("reference");
    assert_eq!(ok.log, want.log, "post-fault session must deliver the full view");
}
