//! The paper's own worked examples, executed end to end.

use xsac::core::evaluator::{EvalConfig, Evaluator};
use xsac::core::oracle::oracle_view_string;
use xsac::core::output::reassemble_to_string;
use xsac::core::{Policy, Sign};
use xsac::xml::Document;

/// Figure 3: rules R: ⊕ //b[c]/d and S: ⊖ //c over the abstract document
/// a( b(d c d), c( b(d c) ) ) — the snapshot document of the paper.
#[test]
fn figure3_execution() {
    let xml = "<a><b><d>d1</d><c>c1</c><d>d2</d></b><c><b><d>d3</d><c>c2</c></b></c></a>";
    let doc = Document::parse(xml).unwrap();
    let mut dict = doc.dict.clone();
    let policy =
        Policy::parse("u", &[(Sign::Permit, "//b[c]/d"), (Sign::Deny, "//c")], &mut dict).unwrap();
    let mut eval = Evaluator::new(&policy, None, EvalConfig::default());
    for ev in doc.events() {
        eval.event(&ev);
    }
    let res = eval.finish();
    let got = reassemble_to_string(&dict, &res.log);
    // d1/d2 granted once c1 satisfies [c] (pending at step 2, resolved at
    // step 3 of the paper's snapshot); the inner b under the denied outer
    // c re-grants d3 (most-specific), the outer c remains a shell.
    assert_eq!(got, "<a><b><d>d1</d><d>d2</d></b><c><b><d>d3</d></b></c></a>");
    assert_eq!(got, oracle_view_string(&doc, &policy));
    // The paper's step 3 optimization: the satisfied [c] predicate stops
    // being evaluated — no second instance for the same b.
    assert!(res.stats.instances_created >= 2, "two b instances bind [c]");
}

/// Figure 7: the skip-index walkthrough with rules
///   R: ⊕ /a[d = 4]/c    S: ⊖ //c/e[m = 3]
///   T: ⊕ //c[//i = 3]//f U: ⊖ //h[k = 2]
#[test]
fn figure7_skipping_walkthrough() {
    let xml = "<a><b><m>0</m><o>0</o><p>0</p></b>\
               <c><e><m>3</m><t>0</t><p>0</p></e>\
                  <f><m>0</m><p>0</p></f>\
                  <g>0</g>\
                  <h><m>0</m><k>2</k><i>3</i></h></c>\
               <d>4</d></a>";
    let doc = Document::parse(xml).unwrap();
    let mut dict = doc.dict.clone();
    let policy = Policy::parse(
        "u",
        &[
            (Sign::Permit, "/a[d = 4]/c"),
            (Sign::Deny, "//c/e[m = 3]"),
            (Sign::Permit, "//c[//i = 3]//f"),
            (Sign::Deny, "//h[k = 2]"),
        ],
        &mut dict,
    )
    .unwrap();
    let expected = oracle_view_string(&doc, &policy);
    // The paper's delivered elements: c's subtree minus e (m=3 denies it)
    // minus h (k=2 denies it); f also granted by T.
    assert_eq!(expected, "<a><c><f><m>0</m><p>0</p></f><g>0</g></c></a>");
    let mut eval = Evaluator::new(&policy, None, EvalConfig::default());
    for ev in doc.events() {
        eval.event(&ev);
    }
    let got = reassemble_to_string(&dict, &eval.finish().log);
    assert_eq!(got, expected);
}

/// Figure 7's first skip: "at the time element b is reached, all the
/// active rules are stopped thanks to TagArray_b and the complete subtree
/// can be skipped" — verified through the full encrypted session, where
/// the skip saves measurable bytes.
#[test]
fn figure7_skip_saves_bytes() {
    use xsac::crypto::chunk::ChunkLayout;
    use xsac::crypto::{IntegrityScheme, TripleDes};
    use xsac::soe::{run_session, CostModel, ServerDoc, SessionConfig, Strategy};

    // Fatten b's subtree so the skip is visible in the byte counts.
    let mut b_content = String::new();
    for i in 0..60 {
        b_content.push_str(&format!("<m>filler {i}</m>"));
    }
    let xml = format!(
        "<a><b>{b_content}</b>\
         <c><e><m>3</m></e><f><m>0</m></f><g>0</g><h><k>2</k><i>3</i></h></c>\
         <d>4</d></a>"
    );
    let doc = Document::parse(&xml).unwrap();
    let key = TripleDes::new(*b"figure7-walkthrough-24!!");
    let server = ServerDoc::prepare(
        &doc,
        &key,
        IntegrityScheme::Ecb,
        ChunkLayout { chunk_size: 512, fragment_size: 64 },
    );
    let mut dict = server.dict.clone();
    let policy = Policy::parse(
        "u",
        &[
            (Sign::Permit, "/a[d = 4]/c"),
            (Sign::Deny, "//c/e[m = 3]"),
            (Sign::Permit, "//c[//i = 3]//f"),
            (Sign::Deny, "//h[k = 2]"),
        ],
        &mut dict,
    )
    .unwrap();
    let t = run_session(&server, &key, &policy, None, &SessionConfig::default()).unwrap();
    let b = run_session(
        &server,
        &key,
        &policy,
        None,
        &SessionConfig { strategy: Strategy::BruteForce, cost: CostModel::smartcard() },
    )
    .unwrap();
    assert_eq!(reassemble_to_string(&dict, &t.log), reassemble_to_string(&dict, &b.log));
    assert!(
        t.cost.bytes_to_soe * 2 < b.cost.bytes_to_soe,
        "b's subtree must be skipped: {} vs {}",
        t.cost.bytes_to_soe,
        b.cost.bytes_to_soe
    );
    assert!(t.stats.skips_denied >= 1);
}

/// §5's pending-predicate scenario: a predicate conditioning a subtree is
/// encountered long after the subtree; out-of-order delivery reassembles
/// the original order.
#[test]
fn pending_predicate_reassembly_order() {
    // //folder[flag=1]: flag arrives last; three folders interleaved with
    // granted-by-other-rule content.
    let xml = "<r>\
        <folder><data>A</data><flag>1</flag></folder>\
        <keep>x</keep>\
        <folder><data>B</data><flag>0</flag></folder>\
        <folder><data>C</data><flag>1</flag></folder>\
      </r>";
    let doc = Document::parse(xml).unwrap();
    let mut dict = doc.dict.clone();
    let policy = Policy::parse(
        "u",
        &[(Sign::Permit, "//folder[flag=1]"), (Sign::Permit, "//keep")],
        &mut dict,
    )
    .unwrap();
    let expected = oracle_view_string(&doc, &policy);
    let mut eval = Evaluator::new(&policy, None, EvalConfig::default());
    for ev in doc.events() {
        eval.event(&ev);
    }
    let got = reassemble_to_string(&dict, &eval.finish().log);
    assert_eq!(got, expected);
    // Document order restored: A before x before C; B absent.
    let a = got.find("<data>A</data>").expect("A");
    let x = got.find("<keep>x</keep>").expect("x");
    let c = got.find("<data>C</data>").expect("C");
    assert!(a < x && x < c);
    assert!(!got.contains("<data>B</data>"));
}

/// The Structural rule (§2): names of the path to a granted node are
/// delivered; with the dummy option, denied ancestors are renamed.
#[test]
fn structural_rule_with_dummy_names() {
    let xml = "<top><hidden><leaf>payload</leaf><other>no</other></hidden></top>";
    let doc = Document::parse(xml).unwrap();
    let mut dict = doc.dict.clone();
    let policy = Policy::parse("u", &[(Sign::Permit, "//leaf")], &mut dict).unwrap();
    let dummy = xsac::xml::writer::dummy_tag(&mut dict);
    let config = EvalConfig { dummy_denied_ancestors: true, ..Default::default() };
    let mut eval = Evaluator::new(&policy, None, config).with_dummy_tag(dummy);
    for ev in doc.events() {
        eval.event(&ev);
    }
    let got = reassemble_to_string(&dict, &eval.finish().log);
    assert_eq!(got, "<_><_><leaf>payload</leaf></_></_>");
}
