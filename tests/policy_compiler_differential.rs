//! Differential suite for the policy compiler: containment-based rule
//! minimization + the flat evaluation IR must be *invisible* to
//! everything but speed.
//!
//! Three angles:
//!
//! * **Figure-10 views** (already minimal — no rule is containment-
//!   redundant): the minimized compilation must drop zero rules and the
//!   session must be byte-identical to the unminimized one — delivery
//!   log, `AccessCost`, evaluator statistics, readback handles — and
//!   both must match the DOM oracle. With and without a query (the
//!   per-session IR-extension path).
//! * **Synthetic redundant policies** (duplicates, contained same-sign
//!   pairs, duplicates under a deny): the minimizer must actually drop
//!   rules, the view must stay oracle-exact, and the minimized session
//!   must not do *more* work than the unminimized one.
//! * **Random rule sets** over random hospital documents: whatever the
//!   minimizer decides, the delivered view equals the unminimized view
//!   and the oracle.
//!
//! Plus the observability plumbing: compiler events recorded against a
//! document roll up into the dissemination service's snapshot.

use proptest::prelude::*;
use std::sync::Arc;
use xsac::core::oracle::oracle_view_string;
use xsac::core::output::reassemble_to_string;
use xsac::core::{CompiledPolicy, CompilerMode, Policy, Sign};
use xsac::crypto::chunk::ChunkLayout;
use xsac::crypto::{IntegrityScheme, TripleDes};
use xsac::datagen::hospital::{hospital_document, physician_name, HospitalConfig};
use xsac::datagen::profiles::{figure10_query, stacked_researcher_policy, View};
use xsac::datagen::rulegen::{random_policy, RuleGenConfig};
use xsac::net::ChunkServer;
use xsac::soe::{
    run_session_shared, ServerDoc, SessionConfig, SessionResult, Strategy as SoeStrategy,
};
use xsac::xpath::Automaton;

fn key() -> TripleDes {
    TripleDes::new(*b"policy-compiler-diff-24a")
}

fn layout() -> ChunkLayout {
    ChunkLayout { chunk_size: 512, fragment_size: 64 }
}

/// One session under an explicit compiler mode.
fn run_mode(
    server: &ServerDoc,
    policy: &Policy,
    mode: CompilerMode,
    query: Option<&Automaton>,
    config: &SessionConfig,
) -> SessionResult {
    let compiled = Arc::new(CompiledPolicy::with_mode(policy, mode));
    run_session_shared(server, &key(), &compiled, query, config, None).expect("session")
}

/// Asserts full byte-identity between a minimized and an unminimized
/// session — the contract when minimization dropped nothing.
macro_rules! assert_identical {
    ($min:expr, $raw:expr, $label:expr) => {
        prop_assert_eq!(&$min.log, &$raw.log, "{}: delivery log diverged", $label);
        prop_assert_eq!($min.cost, $raw.cost, "{}: AccessCost diverged", $label);
        prop_assert_eq!(&$min.output, &$raw.output, "{}: output stats diverged", $label);
        prop_assert_eq!(&$min.stats, &$raw.stats, "{}: evaluator stats diverged", $label);
        prop_assert_eq!($min.result_bytes, $raw.result_bytes, "{}", $label);
        prop_assert_eq!($min.handles_created, $raw.handles_created, "{}", $label);
        prop_assert_eq!($min.handles_peak, $raw.handles_peak, "{}", $label);
    };
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..Default::default() })]

    /// Minimized == unminimized == oracle on the Figure-10 views, with
    /// and without a query, under both integrity schemes and both
    /// consumption strategies. The views carry no redundant rule, so
    /// the compilations must be *indistinguishable* in every metered
    /// quantity, not just in the delivered view.
    #[test]
    fn figure10_views_are_untouched_and_byte_identical(
        folders in 1usize..4,
        doc_seed in any::<u16>(),
        age in 30u32..80,
    ) {
        let config = HospitalConfig { folders, ..Default::default() };
        let doc = hospital_document(&config, doc_seed as u64);
        let frequent = physician_name(0);
        let rare = physician_name(config.physicians - 1);
        for scheme in [IntegrityScheme::Ecb, IntegrityScheme::EcbMht] {
            let server = ServerDoc::prepare(&doc, &key(), scheme, layout());
            for view in View::ALL {
                let mut dict = server.dict.clone();
                let policy = view.policy(&mut dict, &frequent, &rare);
                let expected = oracle_view_string(&doc, &policy);
                let query = Automaton::parse(&figure10_query(age), &mut dict).expect("query");
                for with_query in [false, true] {
                    let q = if with_query { Some(&query) } else { None };
                    for strategy in [SoeStrategy::Tcsbr, SoeStrategy::BruteForce] {
                        let sc = SessionConfig { strategy, ..Default::default() };
                        let min = run_mode(&server, &policy, CompilerMode::Minimized, q, &sc);
                        let raw = run_mode(&server, &policy, CompilerMode::Unminimized, q, &sc);
                        let label =
                            format!("{scheme:?} {} q={with_query} {strategy:?}", view.name());
                        prop_assert_eq!(
                            min.compiler.rules_dropped(), 0,
                            "{}: Figure-10 views have no redundant rule", &label
                        );
                        prop_assert_eq!(min.compiler.rules_in, policy.rules.len(), "{}", &label);
                        prop_assert!(min.compiler.ir_instructions > 0, "{}", &label);
                        assert_identical!(min, raw, &label);
                        if !with_query {
                            let got = reassemble_to_string(&dict, &min.log);
                            prop_assert_eq!(&got, &expected, "{}: diverged from oracle", &label);
                        }
                    }
                }
            }
        }
    }

    /// Random rule sets: whatever the minimizer drops, the delivered
    /// view equals the unminimized view and the DOM oracle, and the
    /// minimized session never does more evaluator work. When nothing
    /// drops, the sessions must be byte-identical outright.
    #[test]
    fn random_rule_sets_survive_minimization(
        doc_seed in any::<u16>(),
        rule_seed in any::<u16>(),
        rules in 2usize..12,
    ) {
        let doc = hospital_document(
            &HospitalConfig { folders: 2, ..Default::default() },
            doc_seed as u64,
        );
        let gen_config = RuleGenConfig { rules, ..Default::default() };
        let policy = random_policy(&doc, &gen_config, rule_seed as u64);
        let expected = oracle_view_string(&doc, &policy);
        let server = ServerDoc::prepare(&doc, &key(), IntegrityScheme::Ecb, layout());
        let dict = server.dict.clone();
        for strategy in [SoeStrategy::Tcsbr, SoeStrategy::BruteForce] {
            let sc = SessionConfig { strategy, ..Default::default() };
            let min = run_mode(&server, &policy, CompilerMode::Minimized, None, &sc);
            let raw = run_mode(&server, &policy, CompilerMode::Unminimized, None, &sc);
            let label = format!("seed {doc_seed}/{rule_seed} {strategy:?}");
            prop_assert_eq!(&min.log, &raw.log, "{}: delivery log diverged", &label);
            prop_assert!(
                min.stats.token_ops <= raw.stats.token_ops,
                "{}: minimized session did more token work ({} > {})",
                &label, min.stats.token_ops, raw.stats.token_ops
            );
            prop_assert!(min.cost.bytes_to_soe <= raw.cost.bytes_to_soe, "{}", &label);
            if min.compiler.rules_dropped() == 0 {
                assert_identical!(min, raw, &label);
            }
            let got = reassemble_to_string(&dict, &min.log);
            prop_assert_eq!(&got, &expected, "{}: diverged from oracle", &label);
        }
    }
}

/// Synthetic redundant policies: the minimizer must fire, and firing
/// must be invisible in the delivered view.
#[test]
fn redundant_policies_drop_rules_without_changing_the_view() {
    let doc = hospital_document(&HospitalConfig { folders: 2, ..Default::default() }, 7);
    let server = ServerDoc::prepare(&doc, &key(), IntegrityScheme::EcbMht, layout());
    // (rules, expected drops): duplicates, a contained same-sign pair
    // with no opposite rule, and duplicates surviving *under* a deny
    // (mutual containment is droppable even when §3.3's strong
    // condition fails for strict containment).
    let cases: &[(&[(Sign, &str)], usize)] = &[
        (&[(Sign::Permit, "//Admin"), (Sign::Permit, "//Admin")], 1),
        (&[(Sign::Permit, "//Admin"), (Sign::Permit, "//Admin//Address")], 1),
        (&[(Sign::Permit, "//MedActs"), (Sign::Permit, "//MedActs"), (Sign::Deny, "//Details")], 1),
        // Triplicate permits drop to one; ⊖//Analysis//Cholesterol is
        // contained in ⊖//Analysis but survives — §3.3's strong
        // condition demands every opposite-signed rule be contained in
        // the dominating deny, and ⊕//Folder//Age is not.
        (
            &[
                (Sign::Permit, "//Folder//Age"),
                (Sign::Permit, "//Folder//Age"),
                (Sign::Permit, "//Folder//Age"),
                (Sign::Deny, "//Analysis"),
                (Sign::Deny, "//Analysis//Cholesterol"),
            ],
            2,
        ),
    ];
    for (rules, expected_drops) in cases {
        let mut dict = server.dict.clone();
        let policy = Policy::parse("u", rules, &mut dict).unwrap();
        let expected = oracle_view_string(&doc, &policy);
        for strategy in [SoeStrategy::Tcsbr, SoeStrategy::BruteForce] {
            let sc = SessionConfig { strategy, ..Default::default() };
            let min = run_mode(&server, &policy, CompilerMode::Minimized, None, &sc);
            let raw = run_mode(&server, &policy, CompilerMode::Unminimized, None, &sc);
            assert_eq!(
                min.compiler.rules_dropped(),
                *expected_drops,
                "{rules:?}: wrong drop count"
            );
            assert_eq!(raw.compiler.rules_dropped(), 0, "{rules:?}: unminimized must not drop");
            assert_eq!(min.log, raw.log, "{rules:?} {strategy:?}: delivery log diverged");
            assert!(
                min.stats.token_ops <= raw.stats.token_ops,
                "{rules:?} {strategy:?}: minimized did more work"
            );
            assert!(min.cost.bytes_to_soe <= raw.cost.bytes_to_soe, "{rules:?} {strategy:?}");
            let got = reassemble_to_string(&dict, &min.log);
            assert_eq!(got, expected, "{rules:?} {strategy:?}: diverged from oracle");
        }
    }
}

/// The rule-heavy A/B profile: four stacked copies of the 10-group
/// Researcher policy minimize back to the 21 base rules, and the
/// stacked-minimized session is byte-identical to the base session.
#[test]
fn stacked_researcher_minimizes_to_the_base_policy() {
    let doc = hospital_document(&HospitalConfig { folders: 3, ..Default::default() }, 11);
    let server = ServerDoc::prepare(&doc, &key(), IntegrityScheme::EcbMht, layout());
    let mut dict = server.dict.clone();
    let base = xsac::datagen::profiles::researcher_policy("r", 10, &mut dict);
    let stacked = stacked_researcher_policy("r", 10, 4, &mut dict);
    assert_eq!(stacked.rules.len(), 84);
    let compiled = CompiledPolicy::compile(&stacked);
    assert_eq!(compiled.rule_count(), base.rules.len(), "4×21 rules must minimize to 21");
    assert_eq!(compiled.minimize_stats().rules_dropped(), 63);

    let sc = SessionConfig::default();
    let stacked_min = run_mode(&server, &stacked, CompilerMode::Minimized, None, &sc);
    let stacked_raw = run_mode(&server, &stacked, CompilerMode::Unminimized, None, &sc);
    let base_min = run_mode(&server, &base, CompilerMode::Minimized, None, &sc);
    // The minimized stacked policy *is* the base policy.
    assert_eq!(stacked_min.log, base_min.log);
    assert_eq!(stacked_min.stats, base_min.stats);
    assert_eq!(stacked_min.cost, base_min.cost);
    // And it delivers the same view as the unminimized stacked one, for
    // a fraction of the token work.
    assert_eq!(stacked_min.log, stacked_raw.log);
    assert!(
        stacked_min.stats.token_ops * 2 < stacked_raw.stats.token_ops,
        "84→21 rules should cut token work by far more than 2×: {} vs {}",
        stacked_min.stats.token_ops,
        stacked_raw.stats.token_ops
    );
    assert_eq!(reassemble_to_string(&dict, &stacked_min.log), oracle_view_string(&doc, &stacked));
}

/// Client-side compiler events roll up through the document registry
/// into the service snapshot an operator scrapes.
#[test]
fn compiler_events_roll_into_the_service_snapshot() {
    let doc = hospital_document(&HospitalConfig { folders: 1, ..Default::default() }, 3);
    let server_doc = ServerDoc::prepare(&doc, &key(), IntegrityScheme::Ecb, layout());
    let mut dict = server_doc.dict.clone();
    let stacked = stacked_researcher_policy("r", 10, 4, &mut dict);
    let compiled = CompiledPolicy::compile(&stacked);
    let stats = *compiled.minimize_stats();

    let server = ChunkServer::new(server_doc, "hospital");
    let registry = server.registry();
    assert!(registry.record_policy_compile("hospital", &stats, false));
    assert!(registry.record_policy_compile("hospital", &stats, true));
    assert!(registry.record_policy_compile("hospital", &stats, true));
    assert!(
        !registry.record_policy_compile("no-such-doc", &stats, false),
        "unknown ids must not record"
    );

    let snap = server.service_snapshot();
    assert_eq!(snap.policy_compiles, 1);
    assert_eq!(snap.policy_cache_hits, 2);
    assert_eq!(snap.rules_minimized, 63);
    let row = &snap.registry.docs[0];
    assert_eq!(row.doc_id, "hospital");
    assert_eq!(row.policy_compiles, 1);
    assert_eq!(row.policy_cache_hits, 2);
    assert_eq!(row.rules_minimized, 63);
}
