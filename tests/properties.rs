//! Workspace-level property tests: the full encrypted pipeline must agree
//! with the DOM oracle on random documents × random policies, under every
//! integrity scheme; tampering anywhere must be detected.
//!
//! Case counts are modest: each case drives real 3DES in debug mode.

use proptest::prelude::*;
use xsac::core::oracle::oracle_view_string;
use xsac::core::output::reassemble_to_string;
use xsac::core::{Policy, Sign};
use xsac::crypto::chunk::ChunkLayout;
use xsac::crypto::{IntegrityScheme, TripleDes};
use xsac::index::decode::Decoder;
use xsac::index::encode::{encode_document, Encoding};
use xsac::soe::{run_session, SessionConfig, SessionError, Strategy as SoeStrategy};
use xsac::xml::Document;

const TAGS: &[&str] = &["a", "b", "c", "d"];
const VALUES: &[&str] = &["1", "2", "secret-value", "x"];

fn arb_doc() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        proptest::sample::select(VALUES).prop_map(|v| v.to_string()),
        proptest::sample::select(TAGS).prop_map(|t| format!("<{t}></{t}>")),
    ];
    let inner = leaf.prop_recursive(3, 16, 3, |elem| {
        (proptest::sample::select(TAGS), prop::collection::vec(elem, 0..3))
            .prop_map(|(t, cs)| format!("<{t}>{}</{t}>", cs.concat()))
    });
    (proptest::sample::select(TAGS), prop::collection::vec(inner, 0..3))
        .prop_map(|(t, cs)| format!("<{t}>{}</{t}>", cs.concat()))
}

fn arb_rules() -> impl Strategy<Value = Vec<(bool, String)>> {
    let step = prop_oneof![
        3 => proptest::sample::select(TAGS).prop_map(|t| t.to_string()),
        1 => Just("*".to_string()),
    ];
    let seg = (proptest::sample::select(&["/", "//"]), step).prop_map(|(a, s)| format!("{a}{s}"));
    let pred = prop_oneof![
        Just(String::new()),
        (proptest::sample::select(TAGS), proptest::sample::select(&["", " = 1", " != 2"]))
            .prop_map(|(t, c)| format!("[{t}{c}]")),
    ];
    let path = (prop::collection::vec(seg, 1..3), pred)
        .prop_map(|(segs, p)| format!("{}{p}", segs.concat()));
    prop::collection::vec((any::<bool>(), path), 0..4)
}

fn key() -> TripleDes {
    TripleDes::new(*b"property-test-key-24-xyz")
}

fn layout() -> ChunkLayout {
    ChunkLayout { chunk_size: 256, fragment_size: 32 }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..Default::default() })]

    /// The whole encrypted pipeline equals the oracle.
    #[test]
    fn encrypted_session_equals_oracle(xml in arb_doc(), rules in arb_rules()) {
        let doc = Document::parse(&xml).unwrap();
        let rules: Vec<(Sign, &str)> = rules
            .iter()
            .map(|(p, s)| (if *p { Sign::Permit } else { Sign::Deny }, s.as_str()))
            .collect();
        for scheme in [IntegrityScheme::Ecb, IntegrityScheme::EcbMht] {
            let server = xsac::soe::ServerDoc::prepare(&doc, &key(), scheme, layout());
            let mut dict = server.dict.clone();
            let policy = Policy::parse("ann", &rules, &mut dict).unwrap();
            let expected = oracle_view_string(&doc, &policy);
            for strategy in [SoeStrategy::Tcsbr, SoeStrategy::BruteForce] {
                let config = SessionConfig { strategy, cost: xsac::soe::CostModel::smartcard() };
                let res = run_session(&server, &key(), &policy, None, &config).unwrap();
                prop_assert_eq!(
                    reassemble_to_string(&dict, &res.log),
                    expected.clone(),
                    "xml={} rules={:?} scheme={:?} strategy={:?}",
                    xml, rules, scheme, strategy
                );
            }
        }
    }

    /// TCSBR roundtrip at workspace level.
    #[test]
    fn skip_index_roundtrip(xml in arb_doc()) {
        let doc = Document::parse(&xml).unwrap();
        let enc = encode_document(&doc, Encoding::TCSBR);
        let events = Decoder::decode_all(&enc.bytes, doc.dict.len()).unwrap();
        prop_assert_eq!(events, doc.events());
    }

    /// Any single-byte flip anywhere in the protected store is detected
    /// by ECB-MHT (ciphertext or digest table).
    #[test]
    fn tamper_detection_everywhere(xml in arb_doc(), flip in any::<(u32, u8)>()) {
        let doc = Document::parse(&xml).unwrap();
        let mut server = xsac::soe::ServerDoc::prepare(&doc, &key(), IntegrityScheme::EcbMht, layout());
        let (pos, bit) = flip;
        let n = server.protected.ciphertext().len();
        let d = server.protected.digests.len();
        let total = n + d * 24;
        let pos = pos as usize % total;
        let mask = 1u8 << (bit % 8);
        if pos < n {
            server.protected.ciphertext_mut()[pos] ^= mask;
        } else {
            let di = (pos - n) / 24;
            let off = (pos - n) % 24;
            server.protected.digests[di][off] ^= mask;
        }
        let mut dict = server.dict.clone();
        // A policy that reads everything, so the flipped byte is visited.
        let policy = Policy::parse("u", &[(Sign::Permit, "/*")], &mut dict).unwrap();
        let res = run_session(&server, &key(), &policy, None, &SessionConfig::default());
        prop_assert!(
            matches!(res, Err(SessionError::Integrity(_))),
            "flip at {} undetected (xml={})", pos, xml
        );
    }
}

#[test]
fn session_config_default_is_tcsbr_smartcard() {
    let c = SessionConfig::default();
    assert_eq!(c.strategy, SoeStrategy::Tcsbr);
}
