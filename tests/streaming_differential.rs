//! Differential property test for the out-of-core read path: a
//! file-backed session must be *indistinguishable* from an in-memory one.
//!
//! Random hospital documents × all five Figure-10 views × {ECB, ECB-MHT}
//! × random chunk layouts: the file-backed server (ciphertext encrypted
//! chunk-at-a-time straight to disk, served through a bounded resident
//! window) must produce byte-identical delivery logs and identical
//! `AccessCost`/metering to the in-memory server — and both must still
//! match the DOM oracle. Whatever the storage layer does, the enforced
//! view stays exactly the model semantics.
//!
//! Case counts are modest: each case drives real 3DES in debug mode.

use proptest::prelude::*;
use xsac::core::oracle::oracle_view_string;
use xsac::core::output::reassemble_to_string;
use xsac::crypto::chunk::ChunkLayout;
use xsac::crypto::store::TempPath;
use xsac::crypto::{IntegrityScheme, TripleDes};
use xsac::datagen::hospital::{hospital_document, physician_name, HospitalConfig};
use xsac::datagen::profiles::View;
use xsac::soe::{run_session, ServerDoc, SessionConfig, Strategy as SoeStrategy};

fn key() -> TripleDes {
    TripleDes::new(*b"streaming-diff-key-24-ab")
}

/// Random (but always valid) chunk geometry: chunks 256/512/1024 bytes,
/// fragments 32/64 — small enough that tiny documents still span many
/// chunks.
fn arb_layout() -> impl Strategy<Value = ChunkLayout> {
    (0u32..3, 0u32..2)
        .prop_map(|(c, f)| ChunkLayout { chunk_size: 256usize << c, fragment_size: 32usize << f })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..Default::default() })]

    /// File-backed == in-memory == oracle, across views, schemes,
    /// strategies and layouts.
    #[test]
    fn file_backed_sessions_equal_in_memory_sessions(
        folders in 1usize..4,
        doc_seed in any::<u16>(),
        layout in arb_layout(),
        window_chunks in 1usize..4,
    ) {
        let config = HospitalConfig { folders, ..Default::default() };
        let doc = hospital_document(&config, doc_seed as u64);
        let frequent = physician_name(0);
        let rare = physician_name(config.physicians - 1);
        for scheme in [IntegrityScheme::Ecb, IntegrityScheme::EcbMht] {
            let mem = ServerDoc::prepare(&doc, &key(), scheme, layout);
            let tmp = TempPath::new("streaming-diff");
            let window = window_chunks * layout.chunk_size;
            // The production out-of-core path: encrypt + digest straight
            // to disk, chunk-at-a-time.
            let file = ServerDoc::prepare_to_store(&doc, &key(), scheme, layout, tmp.path(), window)
                .expect("prepare to store");
            for view in View::ALL {
                let mut dict = mem.dict.clone();
                let policy = view.policy(&mut dict, &frequent, &rare);
                let expected = oracle_view_string(&doc, &policy);
                for strategy in [SoeStrategy::Tcsbr, SoeStrategy::BruteForce] {
                    let config = SessionConfig { strategy, ..Default::default() };
                    let a = run_session(&mem, &key(), &policy, None, &config)
                        .expect("in-memory session");
                    let b = run_session(&file, &key(), &policy, None, &config)
                        .expect("file-backed session");
                    let label = format!("{scheme:?} {} {strategy:?}", view.name());
                    // Byte-identical delivery logs (items, anchors,
                    // payloads) and identical metering: the backend must
                    // be invisible to everything but residency.
                    prop_assert_eq!(&a.log, &b.log, "{}: delivery log diverged", &label);
                    prop_assert_eq!(a.cost, b.cost, "{}: AccessCost diverged", &label);
                    prop_assert_eq!(a.output, b.output, "{}", &label);
                    prop_assert_eq!(a.stats, b.stats, "{}", &label);
                    prop_assert_eq!(a.result_bytes, b.result_bytes, "{}", &label);
                    prop_assert_eq!(a.handles_created, b.handles_created, "{}", &label);
                    prop_assert_eq!(a.handles_peak, b.handles_peak, "{}", &label);
                    // And both enforce exactly the model semantics.
                    let got = reassemble_to_string(&dict, &a.log);
                    prop_assert_eq!(&got, &expected, "{}: view diverged from oracle", &label);
                }
            }
            // The streamed ciphertext is byte-identical to the in-memory
            // one (same chunk-at-a-time core), so the files can be
            // re-served interchangeably.
            prop_assert_eq!(
                std::fs::read(tmp.path()).expect("stored ciphertext"),
                mem.protected.ciphertext().to_vec()
            );
            prop_assert_eq!(&file.protected.digests, &mem.protected.digests);
        }
    }
}
