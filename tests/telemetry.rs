//! The unified telemetry surface, end to end:
//!
//! * **differential** — the runtime span-clock switch must change *no*
//!   output byte: the five Figure-10 views × {ECB, ECB-MHT} produce
//!   identical delivery logs, result sizes and `AccessCost` with
//!   telemetry on and off (phases are the only thing that moves);
//! * **aggregation** — 8 threads of sessions against a two-tenant
//!   server over live TCP, phase profiles pushed back with `Report`:
//!   the wire-level `Stats` snapshot must show non-zero per-phase
//!   totals and request-latency percentiles, per-doc rows must sum
//!   exactly to the service totals, the encoding must round-trip, and
//!   every counter must be monotone across snapshots;
//! * **coverage** — a real admission rejection and real shared-pool
//!   evictions must surface in the Prometheus text exposition with
//!   their live values, not as synthetic fixtures;
//! * **hostility** — `Report` before `Hello`, `Admin` while disabled
//!   and unparseable frames must each produce a *typed* fault frame on
//!   a connection that keeps serving afterwards.
//!
//! Tests that depend on the global runtime switch serialize on one lock
//! (the test harness runs threads in parallel).

use std::sync::{Arc, Mutex, MutexGuard};
use xsac::crypto::chunk::ChunkLayout;
use xsac::crypto::store::TempPath;
use xsac::crypto::{ChunkStore as _, IntegrityScheme, TripleDes};
use xsac::datagen::hospital::{hospital_document, physician_name, HospitalConfig};
use xsac::datagen::profiles::View;
use xsac::datagen::Profile;
use xsac::net::wire::{
    read_frame, write_frame, AdminOp, Request, Response, DEFAULT_CLIENT_MAX_FRAME, PROTOCOL_VERSION,
};
use xsac::net::{
    admin_close_doc, admin_list_docs, connect, decode_snapshot, encode_snapshot, fetch_stats,
    render_text, ChunkServer, ClientConfig, ConnectError, DocRegistry, Fault, ServerConfig,
};
use xsac::obs::{self, Phase, PhaseProfile};
use xsac::soe::{run_session, DocServer, ServerDoc, SessionConfig, SessionSpec};
use xsac::xml::Document;

fn key() -> TripleDes {
    TripleDes::new(*b"telemetry-test-key-24-ab")
}

fn tiny_layout() -> ChunkLayout {
    ChunkLayout { chunk_size: 256, fragment_size: 32 }
}

fn hospital() -> Document {
    hospital_document(&HospitalConfig { folders: 2, ..Default::default() }, 7)
}

/// Serializes tests that read or flip the global runtime switch.
fn telemetry_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn runtime_switch_changes_no_output_bytes() {
    let _guard = telemetry_lock();
    let doc = hospital();
    let frequent = physician_name(0);
    let rare = physician_name(HospitalConfig::default().physicians - 1);
    for scheme in [IntegrityScheme::Ecb, IntegrityScheme::EcbMht] {
        let server = ServerDoc::prepare(&doc, &key(), scheme, tiny_layout());
        for view in View::ALL {
            let mut dict = server.dict.clone();
            let policy = view.policy(&mut dict, &frequent, &rare);
            let config = SessionConfig::default();
            obs::set_enabled(false);
            let off = run_session(&server, &key(), &policy, None, &config).expect("off session");
            obs::set_enabled(true);
            let on = run_session(&server, &key(), &policy, None, &config).expect("on session");
            assert_eq!(off.log, on.log, "{scheme:?}/{view:?}: delivery log moved with telemetry");
            assert_eq!(off.result_bytes, on.result_bytes, "{scheme:?}/{view:?}: result size");
            assert_eq!(off.cost, on.cost, "{scheme:?}/{view:?}: AccessCost moved with telemetry");
            assert!(off.phases.is_zero(), "{scheme:?}/{view:?}: disabled clock recorded time");
            // Under the `telemetry-off` feature the clock is compiled
            // out and "on" also records nothing — the differential half
            // above still holds, which is the point.
            if obs::enabled() {
                assert!(
                    on.phases.total() > 0,
                    "{scheme:?}/{view:?}: enabled clock recorded nothing"
                );
            }
        }
    }
}

#[test]
fn stats_over_tcp_aggregates_rows_and_stays_monotone() {
    let _guard = telemetry_lock();
    obs::set_enabled(true);
    let doc = hospital();
    let registry = Arc::new(DocRegistry::new(1 << 18));
    for id in ["a", "b"] {
        registry
            .insert(id, ServerDoc::prepare(&doc, &key(), IntegrityScheme::EcbMht, tiny_layout()));
    }
    let handle = ChunkServer::with_registry(Arc::clone(&registry)).spawn("127.0.0.1:0").unwrap();
    let addr = handle.addr();

    // 8 threads × 3 profiles, alternating tenants, each pushing its
    // session phase profile back over the Report frame.
    std::thread::scope(|scope| {
        for t in 0..8usize {
            scope.spawn(move || {
                let id = if t % 2 == 0 { "a" } else { "b" };
                let remote = connect(addr, id, ClientConfig::default()).expect("connect");
                let client = DocServer::new(remote, key());
                let mut phases = PhaseProfile::new();
                for profile in Profile::figure9() {
                    let mut dict = client.doc().dict.clone();
                    let spec = SessionSpec::new(
                        profile.name(),
                        profile.policy(&physician_name(0), &mut dict),
                    );
                    let res = client.serve(&spec).expect("session");
                    phases.merge(&res.phases);
                }
                client.doc().protected.store.report_profile(&phases).expect("report");
            });
        }
    });

    let first = fetch_stats(addr, &ClientConfig::default()).expect("stats");
    // The service saw real traffic and real client-side phase time
    // (unless the clock is compiled out by `telemetry-off`, which zeroes
    // the profiles without touching any other assertion here).
    assert!(first.connections >= 8 && first.requests > 0 && first.chunks_served > 0);
    if obs::enabled() {
        for phase in [Phase::Decrypt, Phase::Evaluate, Phase::Decode] {
            assert!(
                first.phase_totals.get(phase) > 0,
                "no reported {} time reached the service roll-up",
                phase.name()
            );
        }
        assert!(first.request_latency.count() > 0, "no request was latency-timed");
        assert!(first.request_latency.p99() >= first.request_latency.p50());
    }

    // Per-doc rows sum *exactly* to the service totals.
    assert_eq!(first.registry.docs.len(), 2);
    let mut phases = PhaseProfile::new();
    let (mut lat_count, mut lat_sum, mut requests) = (0u64, 0u64, 0u64);
    for row in &first.registry.docs {
        assert!(row.requests > 0, "tenant {} saw no traffic", row.doc_id);
        assert!(
            !obs::enabled() || row.phases.total() > 0,
            "tenant {} got no reported phases",
            row.doc_id
        );
        phases.merge(&row.phases);
        lat_count += row.request_latency.count();
        lat_sum += row.request_latency.sum();
        requests += row.requests;
    }
    assert_eq!(phases, first.phase_totals, "per-doc phase rows must sum to the service total");
    assert_eq!(lat_count, first.request_latency.count());
    assert_eq!(lat_sum, first.request_latency.sum());
    assert!(requests <= first.requests, "doc-bound requests cannot exceed all requests");

    // The snapshot the wire carried round-trips its own encoding.
    assert_eq!(decode_snapshot(&encode_snapshot(&first)).expect("round-trip"), first);

    // Counters are monotone across snapshots (the second Stats request
    // itself adds traffic on top of the first).
    let second = fetch_stats(addr, &ClientConfig::default()).expect("stats again");
    assert!(second.connections > first.connections);
    assert!(second.requests >= first.requests);
    assert!(second.chunks_served >= first.chunks_served);
    assert!(second.bytes_served >= first.bytes_served);
    assert!(second.phase_totals.total() >= first.phase_totals.total());
    assert!(second.request_latency.count() >= first.request_latency.count());
    handle.shutdown().unwrap();
}

#[test]
fn live_admission_rejections_and_pool_evictions_reach_the_text_exposition() {
    let doc = hospital();
    let mut tmps = Vec::new();
    // Two lazy file tenants under a pool budget smaller than one
    // document: a full scan must evict under pressure.
    let mut budget = usize::MAX;
    let mut files = Vec::new();
    for id in ["cold-a", "cold-b"] {
        let tmp = TempPath::new("telemetry-pool");
        let file = ServerDoc::prepare_to_store(
            &doc,
            &key(),
            IntegrityScheme::EcbMht,
            tiny_layout(),
            tmp.path(),
            1024,
        )
        .expect("prepare to store");
        budget = budget.min(file.meta().ciphertext_len / 2);
        files.push((id, file.meta()));
        tmps.push(tmp);
    }
    let registry = Arc::new(DocRegistry::new(budget));
    for ((id, meta), tmp) in files.into_iter().zip(&tmps) {
        registry.insert_file(id, meta, tmp.path());
    }
    let server = ChunkServer::with_registry(Arc::clone(&registry))
        .with_config(ServerConfig { max_conns: 1, ..ServerConfig::default() });
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let addr = handle.addr();

    // A real admission rejection: one held slot, one turned-away peer.
    let held = connect(addr, "cold-a", ClientConfig::default()).expect("hold the slot");
    match connect(addr, "cold-a", ClientConfig::default()) {
        Err(ConnectError::Rejected(Fault::Busy { .. })) => {}
        Err(other) => panic!("expected Busy at the admission cap, got {other:?}"),
        Ok(_) => panic!("the admission cap must turn the second client away"),
    }
    // Real pool evictions: scan a document bigger than the shared budget.
    let mut buf = vec![0u8; held.protected.ciphertext_len()];
    held.protected.store.read_at(0, &mut buf).expect("scan");
    drop(held);

    // The freed slot is noticed asynchronously; poll until Stats gets in.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let snap = loop {
        match fetch_stats(addr, &ClientConfig::default()) {
            Ok(snap) => break snap,
            Err(ConnectError::Rejected(Fault::Busy { .. })) => {
                assert!(std::time::Instant::now() < deadline, "admission never recovered");
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(other) => panic!("expected recovery or Busy, got {other:?}"),
        }
    };
    assert!(snap.admission_rejections >= 1, "the Busy fault was not counted");
    assert!(snap.registry.pool_evictions >= 1, "a scan over budget must evict");

    // Satellite audit: the live values — not fixtures — in the text
    // exposition, exactly as a scraper would read them.
    let text = render_text(&snap);
    for needle in [
        format!("xsac_admission_rejections_total {}", snap.admission_rejections),
        format!("xsac_pool_evictions_total {}", snap.registry.pool_evictions),
        format!("xsac_pool_budget_bytes {budget}"),
        format!("xsac_doc_requests_total{{doc=\"cold-a\"}} {}", snap.registry.docs[0].requests),
    ] {
        assert!(text.contains(&needle), "text exposition is missing {needle:?}:\n{text}");
    }
    handle.shutdown().unwrap();
}

/// One raw request/response exchange on an already-open socket.
fn call_raw(sock: &mut std::net::TcpStream, buf: &mut Vec<u8>, req: &Request) -> Response {
    write_frame(sock, &req.encode()).expect("write frame");
    read_frame(sock, DEFAULT_CLIENT_MAX_FRAME, buf).expect("read frame");
    Response::decode(buf).expect("decode response")
}

#[test]
fn hostile_stats_admin_and_report_frames_are_typed_and_survivable() {
    let doc = hospital();
    let prepared = ServerDoc::prepare(&doc, &key(), IntegrityScheme::Ecb, tiny_layout());
    // Admin stays at its default: disabled.
    let handle = ChunkServer::new(prepared, "doc").spawn("127.0.0.1:0").unwrap();
    let mut sock = std::net::TcpStream::connect(handle.addr()).unwrap();
    sock.set_nodelay(true).unwrap();
    let mut buf = Vec::new();

    // Report before Hello: a typed out-of-order rejection.
    match call_raw(&mut sock, &mut buf, &Request::Report { phases: PhaseProfile::new() }) {
        Response::Err(Fault::BadRequest { .. }) => {}
        other => panic!("expected BadRequest for Report-before-Hello, got {other:?}"),
    }
    // Admin while the surface is switched off: typed, permanent.
    match call_raw(&mut sock, &mut buf, &Request::Admin(AdminOp::ListDocs)) {
        Response::Err(Fault::AdminDisabled) => {}
        other => panic!("expected AdminDisabled, got {other:?}"),
    }
    // A Stats request with trailing garbage is unparseable — typed, not
    // a hang and not a disconnect.
    write_frame(&mut sock, &[0x04, 0xde, 0xad]).expect("write junk");
    read_frame(&mut sock, DEFAULT_CLIENT_MAX_FRAME, &mut buf).expect("read");
    match Response::decode(&buf).expect("decode") {
        Response::Err(Fault::BadRequest { .. }) => {}
        other => panic!("expected BadRequest for trailing garbage, got {other:?}"),
    }

    // The same connection keeps serving: Stats answers and parses…
    match call_raw(&mut sock, &mut buf, &Request::Stats) {
        Response::Stats(bytes) => {
            let snap = decode_snapshot(&bytes).expect("snapshot decodes");
            assert!(snap.fault_frames >= 3, "the three hostile frames were not counted");
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    // …and a late Hello still binds, after which Report is accepted.
    let hello = Request::Hello { version: PROTOCOL_VERSION, doc_id: "doc".to_owned() };
    match call_raw(&mut sock, &mut buf, &hello) {
        Response::Hello(_) => {}
        other => panic!("expected Hello, got {other:?}"),
    }
    let mut phases = PhaseProfile::new();
    phases.add_nanos(Phase::Evaluate, 123);
    match call_raw(&mut sock, &mut buf, &Request::Report { phases }) {
        Response::Report => {}
        other => panic!("expected Report ack, got {other:?}"),
    }
    let snap = fetch_stats(handle.addr(), &ClientConfig::default()).expect("stats");
    assert_eq!(
        snap.phase_totals.get(Phase::Evaluate),
        123,
        "the reported profile must land on the bound doc"
    );
    handle.shutdown().unwrap();
}

#[test]
fn admin_surface_lists_and_closes_tenants_when_enabled() {
    let doc = hospital();
    let registry = Arc::new(DocRegistry::new(1 << 18));
    registry
        .insert("resident", ServerDoc::prepare(&doc, &key(), IntegrityScheme::Ecb, tiny_layout()));
    let tmp = TempPath::new("telemetry-admin");
    let file = ServerDoc::prepare_to_store(
        &doc,
        &key(),
        IntegrityScheme::Ecb,
        tiny_layout(),
        tmp.path(),
        1024,
    )
    .expect("prepare to store");
    registry.insert_file("lazy", file.meta(), tmp.path());
    let handle = ChunkServer::with_registry(Arc::clone(&registry))
        .with_config(ServerConfig { admin: true, ..ServerConfig::default() })
        .spawn("127.0.0.1:0")
        .unwrap();
    let addr = handle.addr();
    let cfg = ClientConfig::default();

    let docs = admin_list_docs(addr, &cfg).expect("list");
    assert_eq!(docs.len(), 2);
    let lazy = docs.iter().find(|d| d.doc_id == "lazy").expect("lazy row");
    assert!(lazy.lazy, "file tenants are lazy");
    assert!(docs.iter().any(|d| d.doc_id == "resident" && !d.lazy && d.open));

    // Warm the lazy tenant so there is an instance to close.
    let _scan = connect(addr, "lazy", ClientConfig::default()).expect("open lazy");
    assert!(admin_close_doc(addr, "lazy", &cfg).expect("close"), "lazy tenants close");
    assert!(!admin_close_doc(addr, "lazy", &cfg).expect("re-close"), "already closed");
    assert!(!admin_close_doc(addr, "resident", &cfg).expect("resident"), "resident never closes");
    assert!(!admin_close_doc(addr, "ghost", &cfg).expect("unknown"), "unknown ids are a no-op");
    handle.shutdown().unwrap();
}
